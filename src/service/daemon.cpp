#include "service/daemon.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/report_format.hpp"
#include "support/telemetry.hpp"

namespace ps {

namespace {

/// Stop encoding further stream units once this many unwritten bytes
/// sit in a connection's write buffer; POLLOUT drains it and the pump
/// resumes. This is what bounds a streamed reply's daemon-side memory
/// to roughly one unit regardless of batch size.
constexpr size_t kWriteHighWater = 256 * 1024;
constexpr size_t kReadChunk = 64 * 1024;

/// Fill a sockaddr_un for `path`; false when the path does not fit
/// (sun_path is ~108 bytes).
bool make_address(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// True when a daemon is actually accepting on `path` (distinguishes a
/// live daemon from a stale socket file left behind by a crash).
bool socket_is_live(const std::string& path) {
  sockaddr_un addr;
  if (!make_address(path, addr)) return false;
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  bool live =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return live;
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Split "HOST:PORT" at the last colon (so a numeric IPv6 host keeps
/// its own colons).
bool split_host_port(const std::string& spec, std::string& host,
                     std::string& port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size())
    return false;
  host = spec.substr(0, colon);
  port = spec.substr(colon + 1);
  return true;
}

uint32_t read_le32(const char* bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::string default_daemon_socket() {
  if (const char* runtime_dir = std::getenv("XDG_RUNTIME_DIR");
      runtime_dir != nullptr && runtime_dir[0] != '\0')
    return std::string(runtime_dir) + "/psc-daemon.sock";
  return "/tmp/psc-daemon-" + std::to_string(::getuid()) + ".sock";
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      socket_path_(options_.socket_path.empty() ? default_daemon_socket()
                                                : options_.socket_path),
      service_(options_.service) {}

Daemon::~Daemon() {
  request_stop();
  // serve() normally closed everything; this covers start()-without-
  // serve() and failed starts.
  for (auto& [id, conn] : connections_) ::close(conn.fd);
  connections_.clear();
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Daemon::request_stop() {
  stop_.store(true);
  // write() is async-signal-safe, which is why the wakeup is a
  // self-pipe and not a condition variable: the CLI calls this from
  // its SIGINT/SIGTERM handler. The pipe is non-blocking; if it is
  // full the reactor has unread wakeups pending anyway.
  if (wake_write_fd_ >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_write_fd_, &byte, 1);
  }
}

void Daemon::wake() {
  if (wake_write_fd_ >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t rc = ::write(wake_write_fd_, &byte, 1);
  }
}

bool Daemon::start() {
  start_time_ = std::chrono::steady_clock::now();
  if (wake_read_fd_ < 0) {
    int fds[2];
    if (::pipe(fds) != 0) {
      error_ = std::string("pipe: ") + std::strerror(errno);
      return false;
    }
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);
    ::fcntl(wake_read_fd_, F_SETFD, FD_CLOEXEC);
    ::fcntl(wake_write_fd_, F_SETFD, FD_CLOEXEC);
  }
  sockaddr_un addr;
  if (!make_address(socket_path_, addr)) {
    error_ = "socket path too long: " + socket_path_;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    // Capture errno before any other call can clobber it (the old code
    // read it only after the liveness probe's socket/connect/close
    // sequence, reporting whatever those left behind).
    int bind_errno = errno;
    if (bind_errno == EADDRINUSE) {
      // Either a live daemon (refuse: two daemons on one socket would
      // steal each other's clients) or a stale file from a crash
      // (reclaim it). The probe-unlink-rebind sequence runs under an
      // exclusive flock on a sibling lock file, so two daemons racing
      // to reclaim the same stale path cannot both unlink-and-bind
      // (the loser would silently orphan the winner's fresh socket).
      std::string lock_path = socket_path_ + ".lock";
      int lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0600);
      if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);
      // Probe once and reuse the answer for the error message below:
      // re-probing after a failed reclaim is racy (a daemon exiting
      // between two probes used to yield "bind:" with a bogus errno).
      const bool live = socket_is_live(socket_path_);
      bool reclaimed = false;
      if (!live) {
        ::unlink(socket_path_.c_str());
        reclaimed = ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
        if (!reclaimed) bind_errno = errno;  // the rebind's own errno
      }
      if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
      if (!reclaimed) {
        error_ = live ? "a daemon is already listening on " + socket_path_
                      : std::string("bind: ") + std::strerror(bind_errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
      }
    } else {
      error_ = std::string("bind: ") + std::strerror(bind_errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return false;
  }
  set_nonblocking(listen_fd_);
  if (!options_.listen.empty() && !start_tcp()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return false;
  }
  return true;
}

bool Daemon::start_tcp() {
  std::string host;
  std::string port;
  if (!split_host_port(options_.listen, host, port)) {
    error_ = "bad --listen address (want HOST:PORT): " + options_.listen;
    return false;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    error_ = std::string("getaddrinfo: ") + ::gai_strerror(rc);
    return false;
  }
  int fd = -1;
  std::string bind_error = "no usable address for " + options_.listen;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      bind_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0)
      break;
    bind_error = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    error_ = bind_error;
    return false;
  }
  set_nonblocking(fd);
  // Read back the bound port so --listen=HOST:0 (tests, ephemeral
  // ports) is usable: tcp_port() reports where we actually listen.
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    if (bound.ss_family == AF_INET)
      tcp_port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    else if (bound.ss_family == AF_INET6)
      tcp_port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
  }
  tcp_listen_fd_ = fd;
  return true;
}

void Daemon::serve() {
  if (listen_fd_ < 0) return;
  dispatcher_ = std::thread([this] { dispatcher_main(); });
  if (options_.cache_ttl.count() > 0 && service_.artifact_cache() != nullptr)
    janitor_ = std::thread([this] { janitor_main(); });

  serve_loop();

  // The loop only exits with the compile queue drained, so the
  // dispatcher is idle; tell it to stop waiting and join.
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    dispatcher_stop_ = true;
  }
  jobs_cv_.notify_all();
  dispatcher_.join();
  if (janitor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(janitor_mutex_);
      janitor_stop_ = true;
    }
    janitor_cv_.notify_all();
    janitor_.join();
  }

  for (auto& [id, conn] : connections_) ::close(conn.fd);
  connections_.clear();
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

void Daemon::serve_loop() {
  using Clock = std::chrono::steady_clock;
  bool accepting = true;
  std::optional<Clock::time_point> flush_deadline;
  while (true) {
    const bool stopping = stop_.load();
    if (stopping) accepting = false;
    drain_done_jobs();
    if (stopping) {
      // Close idle connections; the ones still owed bytes (an unflushed
      // ShutdownAck, a mid-stream reply, a queued compile) drain first
      // -- a shutdown acknowledges in-flight work instead of severing
      // it, exactly like the old per-client-thread join did.
      std::vector<uint64_t> idle;
      for (const auto& [id, conn] : connections_)
        if (!conn.busy && conn.stream == nullptr &&
            conn.out_pos == conn.out.size())
          idle.push_back(id);
      for (uint64_t id : idle) close_connection(id);
      bool drained;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        drained = queue_.empty() && in_flight_ == 0 && done_.empty();
      }
      if (drained && connections_.empty()) return;
      if (drained) {
        // Only unflushed replies remain. Give their clients a bounded
        // grace to drain; a stalled reader must not pin shutdown.
        if (!flush_deadline)
          flush_deadline = Clock::now() + std::chrono::seconds(10);
        else if (Clock::now() > *flush_deadline)
          return;
      } else {
        flush_deadline.reset();  // new work finished; re-arm later
      }
    }

    std::vector<pollfd> pfds;
    std::vector<uint64_t> ids;  // parallel; 0 = listener / wake pipe
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    ids.push_back(0);
    if (accepting) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      ids.push_back(0);
      if (tcp_listen_fd_ >= 0) {
        pfds.push_back({tcp_listen_fd_, POLLIN, 0});
        ids.push_back(0);
      }
    }
    for (const auto& [id, conn] : connections_) {
      short events = 0;
      // No POLLIN while a request is in flight: frames queue up in the
      // kernel buffer and the client blocks in write() -- that is the
      // per-connection backpressure.
      if (!conn.busy && conn.stream == nullptr && !conn.close_after_write &&
          !stopping)
        events |= POLLIN;
      if (conn.out_pos < conn.out.size()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
      ids.push_back(id);
    }

    int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                       stopping ? 100 : -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfds[i].fd == wake_read_fd_) {
        char buf[64];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (pfds[i].fd == listen_fd_ && ids[i] == 0) {
        accept_ready(listen_fd_, /*tcp=*/false);
        continue;
      }
      if (pfds[i].fd == tcp_listen_fd_ && ids[i] == 0) {
        accept_ready(tcp_listen_fd_, /*tcp=*/true);
        continue;
      }
      uint64_t id = ids[i];
      if (connections_.find(id) == connections_.end()) continue;
      if (pfds[i].revents & (POLLERR | POLLNVAL)) {
        close_connection(id);
        continue;
      }
      if (pfds[i].revents & POLLIN) read_ready(id);
      if (connections_.find(id) == connections_.end()) continue;
      if (pfds[i].revents & POLLHUP) {
        // Stream sockets report POLLHUP only on a full peer close:
        // nobody is left to read a reply, so drop the connection even
        // mid-compile (the finished job is discarded in
        // drain_done_jobs). Without this a dead busy client would
        // spin the poll loop, since POLLHUP ignores the event mask.
        close_connection(id);
        continue;
      }
      if (pfds[i].revents & POLLOUT) write_ready(id);
    }
  }
}

void Daemon::accept_ready(int listen_fd, bool tcp) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN: drained; others: retry on next poll
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    if (tcp) {
      // The protocol is strictly request/reply; never batch frames.
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    Connection conn;
    conn.fd = fd;
    connections_.emplace(next_conn_id_++, std::move(conn));
    ++stats_.connections_accepted;
  }
}

void Daemon::close_connection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  connections_.erase(it);
}

void Daemon::append_frame(Connection& conn, std::string_view payload) {
  char header[4];
  uint32_t length = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((length >> (8 * i)) & 0xff);
  conn.out.append(header, sizeof(header));
  conn.out.append(payload.data(), payload.size());
}

void Daemon::read_ready(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  char buf[kReadChunk];
  while (true) {
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // EOF: the client is gone
      close_connection(conn_id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn_id);
    return;
  }
  parse_frames(conn_id);
}

void Daemon::parse_frames(uint64_t conn_id) {
  while (true) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    // One request in flight per connection; and don't parse more while
    // a large reply is still flushing (bounded buffering both ways).
    if (conn.busy || conn.stream != nullptr || conn.close_after_write)
      return;
    if (conn.out.size() - conn.out_pos >= kWriteHighWater) return;
    if (conn.in.size() < 4) return;
    uint32_t length = read_le32(conn.in.data());
    if (length > kMaxFrameBytes) {
      append_frame(conn, encode_simple(MsgKind::Error, "oversized frame"));
      conn.close_after_write = true;
      return;
    }
    if (conn.in.size() < 4 + static_cast<size_t>(length)) return;
    std::string payload = conn.in.substr(4, length);
    conn.in.erase(0, 4 + static_cast<size_t>(length));
    handle_message(conn_id, payload);
  }
}

void Daemon::handle_message(uint64_t conn_id, std::string_view payload) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  try {
    switch (peek_kind(payload)) {
      case MsgKind::Ping:
        append_frame(conn, encode_simple(MsgKind::Pong));
        return;
      case MsgKind::Shutdown:
        // Ack first, then stop: the reactor drains queued compiles and
        // unflushed replies before exiting, so other clients' in-flight
        // requests still complete.
        append_frame(conn, encode_simple(MsgKind::ShutdownAck));
        conn.close_after_write = true;
        request_stop();
        return;
      case MsgKind::StatsRequest:
        append_frame(conn,
                     encode_simple(MsgKind::StatsReply,
                                   render_stats(decode_stats_request(payload))));
        return;
      case MsgKind::CompileRequest:
        handle_compile(conn_id, payload, /*v2=*/false);
        return;
      case MsgKind::CompileRequestV2:
        handle_compile(conn_id, payload, /*v2=*/true);
        return;
      default:
        append_frame(conn,
                     encode_simple(MsgKind::Error, "unexpected message kind"));
        return;
    }
  } catch (const WireError& error) {
    // Malformed frame: answer with the error, flush, and drop this
    // client; everyone else is unaffected.
    append_frame(conn, encode_simple(MsgKind::Error, error.what()));
    conn.close_after_write = true;
  } catch (const std::exception& error) {
    append_frame(conn, encode_simple(MsgKind::Error,
                                     std::string("internal: ") + error.what()));
  }
}

void Daemon::handle_compile(uint64_t conn_id, std::string_view payload,
                            bool v2) {
  Connection& conn = connections_.at(conn_id);
  ServiceRequest request = decode_compile_request(payload);
  // A client built from a different compiler version must not be
  // served: this daemon's pipeline would produce that build's output,
  // not the client's, silently breaking the byte-identity contract.
  // The client falls back to in-process compilation. Refusals count as
  // `rejected`, not `compile_requests`: only admitted requests enter
  // the inline/queued/busy ledger, so those three always sum back to
  // the request count (the stats endpoint's reconcile identity).
  if (request.client_version != service_.options().version) {
    ++stats_.rejected;
    append_frame(conn,
                 encode_simple(MsgKind::Error,
                               "version mismatch: daemon is " +
                                   service_.options().version + ", client is " +
                                   request.client_version));
    return;
  }
  ++stats_.compile_requests;
  // Cache-aware admission: a request whose every unit is already on
  // disk is answered right here on the reactor thread -- serve_cached
  // does pure existence probes and never blocks behind an in-flight
  // compile, and the bytes stream straight off the cache files as the
  // reply drains. Only actual compile work competes for the queue.
  if (std::optional<ServiceResponse> cached = service_.serve_cached(request)) {
    ++stats_.served_inline;
    // Inline serves never wait: their queue wait is an exact zero, and
    // recording it keeps the two latency histograms' counts equal to
    // the requests the daemon actually served.
    MetricsRegistry::global().histogram("daemon.queue_wait_ms").record(0.0);
    MetricsRegistry::global().histogram("daemon.service_ms")
        .record(cached->wall_ms);
    if (v2)
      begin_stream(conn_id, std::move(*cached));
    else
      reply_monolithic(conn_id, *cached);
    return;
  }
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  size_t depth = queue_.size() + in_flight_;
  if (depth >= options_.max_queue) {
    ++stats_.busy_rejections;
    append_frame(conn, encode_simple(MsgKind::Busy,
                                     "compile queue full (" +
                                         std::to_string(depth) +
                                         " pending); compile in-process"));
    return;
  }
  ++stats_.queued;
  conn.busy = true;
  Job job;
  job.conn_id = conn_id;
  job.request = std::move(request);
  job.v2 = v2;
  job.enqueued = std::chrono::steady_clock::now();
  queue_.push_back(std::move(job));
  jobs_cv_.notify_one();
}

void Daemon::begin_stream(uint64_t conn_id, ServiceResponse response) {
  Connection& conn = connections_.at(conn_id);
  conn.busy = true;
  ReplyBegin begin;
  begin.unit_count = response.units.size();
  begin.jobs = response.jobs;
  append_frame(conn, encode_reply_begin(begin));
  conn.stream = std::make_unique<Stream>();
  conn.stream->response = std::move(response);
  pump_stream(conn_id);
}

void Daemon::pump_stream(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  while (conn.stream != nullptr &&
         conn.out.size() - conn.out_pos < kWriteHighWater) {
    Stream& stream = *conn.stream;
    if (stream.next_unit < stream.response.units.size()) {
      const ServiceUnit& unit = stream.response.units[stream.next_unit];
      // The wire always carries the full artifact, as raw serialised
      // bytes: in-memory results encode once, and a spilled cache hit
      // splices the validated cache-file payload straight into the
      // frame (no decode/re-encode round trip).
      std::optional<std::string> bytes = service_.artifact_bytes(unit);
      if (!bytes) {
        // Evicted between the probe and the stream: tell the client
        // (it falls back to compiling in-process) and end the stream.
        append_frame(conn, encode_simple(MsgKind::Error,
                                         "artifact for '" + unit.name +
                                             "' evicted before reply"));
        conn.stream.reset();
        conn.busy = false;
        conn.close_after_write = true;
        return;
      }
      RawUnitReply raw;
      raw.name = unit.name;
      raw.cache_hit = unit.cache_hit;
      raw.milliseconds = unit.milliseconds;
      raw.artifact_bytes = std::move(*bytes);
      append_frame(conn, encode_unit_reply_raw(raw));
      ++stream.next_unit;
      continue;
    }
    ReplyEnd end;
    end.cache_hits = stream.response.cache_hits;
    end.cache_misses = stream.response.cache_misses;
    end.wall_ms = stream.response.wall_ms;
    append_frame(conn, encode_reply_end(end));
    conn.stream.reset();
    conn.busy = false;
  }
}

void Daemon::reply_monolithic(uint64_t conn_id,
                              const ServiceResponse& response) {
  Connection& conn = connections_.at(conn_id);
  conn.busy = false;
  std::vector<RawUnitReply> units;
  units.reserve(response.units.size());
  for (const ServiceUnit& unit : response.units) {
    std::optional<std::string> bytes = service_.artifact_bytes(unit);
    if (!bytes) {
      append_frame(conn, encode_simple(MsgKind::Error, "artifact for '" +
                                                           unit.name +
                                                           "' evicted before "
                                                           "reply"));
      conn.close_after_write = true;
      return;
    }
    RawUnitReply raw;
    raw.name = unit.name;
    raw.cache_hit = unit.cache_hit;
    raw.milliseconds = unit.milliseconds;
    raw.artifact_bytes = std::move(*bytes);
    units.push_back(std::move(raw));
  }
  append_frame(conn, encode_compile_reply_raw(response.cache_hits,
                                              response.cache_misses,
                                              response.jobs, response.wall_ms,
                                              units));
}

void Daemon::write_ready(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  while (conn.out_pos < conn.out.size()) {
    // MSG_NOSIGNAL: a client dying mid-reply must be an EPIPE for this
    // connection, not a SIGPIPE for the whole daemon.
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                       conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn_id);
    return;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos > kWriteHighWater) {
    // Reclaim the flushed prefix so a long stream's buffer stays
    // bounded instead of accumulating every frame ever written.
    conn.out.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
  if (conn.stream != nullptr) pump_stream(conn_id);
  auto again = connections_.find(conn_id);
  if (again == connections_.end()) return;
  Connection& current = again->second;
  if (current.out_pos == current.out.size() && current.close_after_write) {
    close_connection(conn_id);
    return;
  }
  if (!current.busy && current.stream == nullptr) parse_frames(conn_id);
}

void Daemon::drain_done_jobs() {
  std::vector<DoneJob> done;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    done.swap(done_);
  }
  for (DoneJob& job : done) {
    auto it = connections_.find(job.conn_id);
    if (it == connections_.end()) continue;  // client left mid-compile
    Connection& conn = it->second;
    if (!job.error.empty()) {
      conn.busy = false;
      append_frame(conn, encode_simple(MsgKind::Error,
                                       "internal: " + job.error));
      continue;
    }
    if (job.v2)
      begin_stream(job.conn_id, std::move(job.response));
    else
      reply_monolithic(job.conn_id, job.response);
  }
}

size_t Daemon::queue_depth() {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  return queue_.size() + in_flight_;
}

void Daemon::dispatcher_main() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_cv_.wait(lock,
                    [this] { return dispatcher_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only stops once drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    MetricsRegistry::global().histogram("daemon.queue_wait_ms")
        .record(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - job.enqueued)
                    .count());
    DoneJob done;
    done.conn_id = job.conn_id;
    done.v2 = job.v2;
    try {
      done.response = service_.compile(job.request);
      MetricsRegistry::global().histogram("daemon.service_ms")
          .record(done.response.wall_ms);
    } catch (const std::exception& error) {
      done.error = error.what();
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      --in_flight_;
      done_.push_back(std::move(done));
    }
    wake();
  }
}

void Daemon::janitor_main() {
  ArtifactCache* cache = service_.artifact_cache();
  const std::chrono::seconds ttl = options_.cache_ttl;
  // Wake about twice per TTL (clamped): often enough that an expired
  // entry lives at most ~1.5 TTLs, rare enough to cost nothing.
  auto period =
      std::chrono::duration_cast<std::chrono::milliseconds>(ttl) / 2;
  period = std::clamp(period, std::chrono::milliseconds(500),
                      std::chrono::milliseconds(30000));
  std::unique_lock<std::mutex> lock(janitor_mutex_);
  while (!janitor_stop_) {
    janitor_cv_.wait_for(lock, period, [this] { return janitor_stop_; });
    if (janitor_stop_) return;
    lock.unlock();
    cache->prune_older_than(ttl);
    lock.lock();
  }
}

std::string Daemon::render_stats(bool json) {
  // Snapshot the reconcilable counters in one place: stats_ lives on
  // the reactor thread (render_stats runs there too), queue_depth()
  // reads the live queue under its own lock, and the latency
  // percentiles come from the process-wide telemetry histograms -- the
  // same ones `psc --metrics` reports.
  DaemonStats d = stats_;
  d.connections_open = connections_.size();
  d.queue_depth = queue_depth();
  ServiceStats s = service_.stats();
  ArtifactCacheStats c = service_.cache_stats();
  Histogram& wait = MetricsRegistry::global().histogram("daemon.queue_wait_ms");
  Histogram& serve = MetricsRegistry::global().histogram("daemon.service_ms");
  double uptime_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
  auto latency_json = [](Histogram& h) {
    std::ostringstream out;
    out << "{\"count\": " << h.count()
        << ", \"p50\": " << format_ms_fixed(h.percentile(50.0))
        << ", \"p95\": " << format_ms_fixed(h.percentile(95.0))
        << ", \"p99\": " << format_ms_fixed(h.percentile(99.0)) << "}";
    return out.str();
  };
  auto latency_text = [](Histogram& h) {
    std::ostringstream out;
    out << "p50 " << format_ms_fixed(h.percentile(50.0)) << " ms, p95 "
        << format_ms_fixed(h.percentile(95.0)) << " ms, p99 "
        << format_ms_fixed(h.percentile(99.0)) << " ms (" << h.count()
        << " samples)";
    return out.str();
  };
  std::ostringstream os;
  if (json) {
    os << "{\n"
       << "  \"daemon\": {\"connections_accepted\": " << d.connections_accepted
       << ", \"connections_open\": " << d.connections_open
       << ", \"compile_requests\": " << d.compile_requests
       << ", \"served_inline\": " << d.served_inline
       << ", \"queued\": " << d.queued
       << ", \"busy_rejections\": " << d.busy_rejections
       << ", \"rejected\": " << d.rejected
       << ", \"queue_depth\": " << d.queue_depth
       << ", \"uptime_ms\": " << format_ms_fixed(uptime_ms)
       << ", \"queue_wait_ms\": " << latency_json(wait)
       << ", \"service_ms\": " << latency_json(serve) << "},\n"
       << "  \"service\": {\"requests\": " << s.requests
       << ", \"units\": " << s.units << ", \"compiled\": " << s.compiled
       << ", \"cache_hits\": " << s.cache_hits
       << ", \"cache_misses\": " << s.cache_misses
       << ", \"spilled\": " << s.spilled
       << ", \"tier_bytecode\": " << s.tier_bytecode
       << ", \"tier_tree_walk\": " << s.tier_tree_walk << "},\n"
       << "  \"artifact_cache\": {\"hits\": " << c.hits
       << ", \"misses\": " << c.misses << ", \"stores\": " << c.stores
       << ", \"evictions\": " << c.evictions << ", \"corrupt\": " << c.corrupt
       << ", \"ttl_pruned\": " << c.ttl_pruned
       << ", \"native_hits\": " << c.native_hits
       << ", \"native_misses\": " << c.native_misses
       << ", \"native_stores\": " << c.native_stores << "}\n"
       << "}\n";
    return os.str();
  }
  os << "daemon: " << d.connections_accepted << " connections accepted, "
     << d.connections_open << " open; " << d.compile_requests
     << " compile requests (" << d.served_inline << " served inline, "
     << d.queued << " queued, " << d.busy_rejections
     << " busy-rejected); queue depth " << d.queue_depth << "; "
     << d.rejected << " rejected; uptime "
     << format_ms_fixed(uptime_ms) << " ms\n"
     << "queue wait: " << latency_text(wait) << "\n"
     << "service time: " << latency_text(serve) << "\n"
     << "service: " << s.requests << " requests, " << s.units << " units ("
     << s.cache_hits << " cache hits, " << s.compiled << " compiled, "
     << s.spilled << " spilled)\n"
     << "engine tiers: " << s.tier_bytecode << " bytecode, "
     << s.tier_tree_walk
     << " tree-walk (stage tier counters across both runners)\n"
     << "artifact cache: " << c.hits << " hits, " << c.misses << " misses, "
     << c.stores << " stores, " << c.evictions << " evicted, " << c.corrupt
     << " corrupt, " << c.ttl_pruned << " ttl-pruned\n"
     << "native objects: " << c.native_hits << " hits, " << c.native_misses
     << " misses, " << c.native_stores << " stores\n";
  return os.str();
}

// -- client -----------------------------------------------------------------

bool DaemonClient::connect(const std::string& socket_path) {
  close();
  busy_ = false;
  sockaddr_un addr;
  if (!make_address(socket_path, addr)) {
    error_ = "socket path too long: " + socket_path;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool DaemonClient::connect_tcp(const std::string& host_port) {
  close();
  busy_ = false;
  std::string host;
  std::string port;
  if (!split_host_port(host_port, host, port)) {
    error_ = "bad daemon address (want HOST:PORT): " + host_port;
    return false;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    error_ = std::string("getaddrinfo: ") + ::gai_strerror(rc);
    return false;
  }
  int connect_errno = 0;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      connect_errno = errno;
      continue;
    }
    if (::connect(fd_, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      break;
    }
    connect_errno = errno;
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(results);
  if (fd_ < 0) {
    error_ = std::string("connect: ") + std::strerror(connect_errno);
    return false;
  }
  return true;
}

void DaemonClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<std::string> DaemonClient::round_trip(
    const std::string& request) {
  if (fd_ < 0) {
    error_ = "not connected";
    return std::nullopt;
  }
  if (!write_frame(fd_, request)) {
    error_ = "connection lost while sending";
    close();
    return std::nullopt;
  }
  std::optional<std::string> reply = read_frame(fd_);
  if (!reply) {
    error_ = "connection lost while waiting for reply";
    close();
    return std::nullopt;
  }
  return reply;
}

std::optional<RemoteReply> DaemonClient::compile(
    const ServiceRequest& request) {
  busy_ = false;
  std::optional<std::string> reply =
      round_trip(encode_compile_request_v2(request));
  if (!reply) return std::nullopt;
  try {
    switch (peek_kind(*reply)) {
      case MsgKind::Error:
        error_ = "daemon error: " + decode_error(*reply);
        return std::nullopt;
      case MsgKind::Busy:
        // The daemon is healthy, just saturated -- the caller compiles
        // in-process instead of waiting (never a hang).
        busy_ = true;
        error_ = "daemon busy: " + decode_text(*reply, MsgKind::Busy);
        return std::nullopt;
      case MsgKind::CompileReply:
        // A pre-v2 daemon answering monolithically; still understood.
        return decode_compile_reply(*reply);
      case MsgKind::CompileReplyBegin:
        break;
      default:
        error_ = "bad reply: unexpected message kind";
        return std::nullopt;
    }
    // Streamed reply: one UnitReply frame per unit, then the trailer.
    ReplyBegin begin = decode_reply_begin(*reply);
    RemoteReply out;
    out.jobs = begin.jobs;
    out.units.reserve(begin.unit_count);
    for (size_t i = 0; i < begin.unit_count; ++i) {
      std::optional<std::string> frame = read_frame(fd_);
      if (!frame) {
        error_ = "connection lost mid-stream";
        close();
        return std::nullopt;
      }
      if (peek_kind(*frame) == MsgKind::Error) {
        error_ = "daemon error: " + decode_error(*frame);
        close();  // the daemon drops the connection after this too
        return std::nullopt;
      }
      out.units.push_back(decode_unit_reply(*frame));
    }
    std::optional<std::string> trailer = read_frame(fd_);
    if (!trailer) {
      error_ = "connection lost before reply trailer";
      close();
      return std::nullopt;
    }
    ReplyEnd end = decode_reply_end(*trailer);
    out.cache_hits = end.cache_hits;
    out.cache_misses = end.cache_misses;
    out.wall_ms = end.wall_ms;
    return out;
  } catch (const WireError& error) {
    error_ = std::string("bad reply: ") + error.what();
    return std::nullopt;
  }
}

bool DaemonClient::ping() {
  std::optional<std::string> reply = round_trip(encode_simple(MsgKind::Ping));
  if (!reply) return false;
  try {
    return peek_kind(*reply) == MsgKind::Pong;
  } catch (const WireError&) {
    return false;
  }
}

bool DaemonClient::shutdown() {
  std::optional<std::string> reply =
      round_trip(encode_simple(MsgKind::Shutdown));
  if (!reply) return false;
  try {
    return peek_kind(*reply) == MsgKind::ShutdownAck;
  } catch (const WireError&) {
    return false;
  }
}

std::optional<std::string> DaemonClient::stats(bool json) {
  std::optional<std::string> reply = round_trip(encode_stats_request(json));
  if (!reply) return std::nullopt;
  try {
    if (peek_kind(*reply) == MsgKind::Error) {
      error_ = "daemon error: " + decode_error(*reply);
      return std::nullopt;
    }
    return decode_text(*reply, MsgKind::StatsReply);
  } catch (const WireError& error) {
    error_ = std::string("bad reply: ") + error.what();
    return std::nullopt;
  }
}

}  // namespace ps
