#include "service/compile_service.hpp"

#include <chrono>
#include <sstream>

#include "core/flowchart.hpp"
#include "runtime/engine_host.hpp"
#include "service/protocol.hpp"
#include "support/report_format.hpp"
#include "support/telemetry.hpp"
#include "support/text_table.hpp"

namespace ps {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

StageArtifact stage_artifact(const CompiledModule& stage) {
  StageArtifact out;
  out.source = stage.source;
  out.schedule = flowchart_to_string(stage.schedule.flowchart, *stage.graph);
  out.c_code = stage.c_code;
  out.graph = stage.graph->summary();
  out.dot = stage.graph->to_dot();
  out.components = components_table(stage);
  EngineTierProbe probe = probe_engine_tier(*stage.module);
  out.engine_tier = std::move(probe.tier);
  out.engine_fallback = std::move(probe.fallback);
  return out;
}

}  // namespace

std::string components_table(const CompiledModule& stage) {
  TextTable table({"Component", "Node(s)", "Flowchart"});
  for (size_t i = 0; i < stage.schedule.components.size(); ++i) {
    const auto& comp = stage.schedule.components[i];
    std::string names;
    for (size_t j = 0; j < comp.nodes.size(); ++j) {
      if (j) names += ", ";
      names += stage.graph->node(comp.nodes[j]).name;
    }
    table.add_row({std::to_string(i + 1), names,
                   flowchart_to_line(comp.flowchart, *stage.graph)});
  }
  return table.render();
}

UnitArtifact artifact_from_result(const BatchUnitResult& unit) {
  UnitArtifact artifact;
  artifact.ok = unit.result.ok;
  artifact.diagnostics = unit.result.diagnostics;
  artifact.module_name = std::string(unit.module_symbol);
  artifact.compile_ms = unit.milliseconds;
  if (unit.result.primary)
    artifact.primary = stage_artifact(*unit.result.primary);
  if (unit.result.transform && unit.result.transformed) {
    artifact.has_transform = true;
    artifact.transform_array = unit.result.transform->array;
    artifact.transform_desc = unit.result.transform->describe();
    if (unit.result.exact_nest)
      artifact.exact_nest = unit.result.exact_nest->to_string();
    artifact.transformed = stage_artifact(*unit.result.transformed);
  }
  return artifact;
}

std::string render_artifact(const UnitArtifact& artifact,
                            const RenderFlags& flags) {
  // Field by field the same text (and the same order: source, schedule,
  // C) main.cpp's print_stage/print_result writes for a fresh
  // CompileResult -- the byte-identity contract of the cached path.
  std::string out;
  auto render_stage = [&](const StageArtifact& stage) {
    if (flags.source) out += stage.source + "\n";
    if (flags.graph) out += stage.graph + "\n";
    if (flags.dot) out += stage.dot + "\n";
    if (flags.components) out += stage.components + "\n";
    if (flags.schedule) out += stage.schedule + "\n";
    if (flags.c_code) out += stage.c_code + "\n";
  };
  if (!artifact.ok) return out;
  render_stage(artifact.primary);
  if (artifact.has_transform) {
    out += "-- hyperplane transform on '" + artifact.transform_array +
           "': " + artifact.transform_desc + "\n\n";
    if (!artifact.exact_nest.empty())
      out += "-- exact loop bounds (Lamport):\n" + artifact.exact_nest +
             "\n\n";
    render_stage(artifact.transformed);
  }
  return out;
}

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)), pool_(options_.jobs) {
  if (!options_.cache_dir.empty()) {
    ArtifactCacheOptions cache_options;
    cache_options.dir = options_.cache_dir;
    cache_options.max_bytes = options_.cache_max_bytes;
    cache_options.version = options_.version;
    cache_ = std::make_unique<ArtifactCache>(std::move(cache_options));
  }
}

BatchDriver& CompileService::driver_for(const CompileOptions& options) {
  // One warm driver per distinct option set: the hyperplane cache only
  // memoises solutions valid under one solver configuration, and the
  // symbol table may as well shard the same way. Requests with the
  // usual handful of flag combinations reuse a handful of drivers.
  std::string fingerprint = ArtifactCache::options_fingerprint(options);
  auto it = drivers_.find(fingerprint);
  if (it == drivers_.end()) {
    BatchOptions batch_options;
    batch_options.pool = &pool_;
    it = drivers_
             .emplace(std::move(fingerprint),
                      std::make_unique<BatchDriver>(options, batch_options))
             .first;
  }
  return *it->second;
}

ServiceResponse CompileService::compile(const ServiceRequest& request) {
  // One request at a time: concurrent daemon clients serialise here, so
  // they can never interleave inside a BatchDriver (whose compile_all
  // is single-caller) and responses stay deterministic.
  std::lock_guard<std::mutex> lock(mutex_);
  // The request span is also the wall timer the response reports; one
  // pair of clock reads feeds both (and the service latency histogram).
  TimedSpan span("service-request", "service");
  span.arg("units", static_cast<int64_t>(request.units.size()));

  ServiceResponse response;
  response.jobs = pool_.size();
  response.units.resize(request.units.size());

  const bool spill = cache_ != nullptr && options_.spill_after > 0 &&
                     request.units.size() > options_.spill_after;

  // Engine-tier counters over every decoded artifact's stages; folded
  // into the session stats at the end (psc --daemon-stats reads them).
  size_t tier_bytecode = 0;
  size_t tier_tree_walk = 0;
  auto count_tiers = [&](const UnitArtifact& artifact) {
    auto count = [&](const std::string& tier) {
      if (tier == "bytecode") ++tier_bytecode;
      else if (tier == "tree-walk") ++tier_tree_walk;
    };
    count(artifact.primary.engine_tier);
    if (artifact.has_transform) count(artifact.transformed.engine_tier);
  };

  // Probe the cache first: every hit is a unit the pass pipeline never
  // sees. Under spill, hits are validated (decoded, then dropped) so
  // the response never accumulates whole-batch artifact text.
  std::vector<size_t> missing;
  for (size_t i = 0; i < request.units.size(); ++i) {
    const BatchInput& input = request.units[i];
    ServiceUnit& unit = response.units[i];
    unit.name = input.name;
    if (cache_ == nullptr) {
      missing.push_back(i);
      continue;
    }
    Clock::time_point probe = Clock::now();
    unit.key = cache_->key(input, request.options);
    std::optional<UnitArtifact> artifact = cache_->load(unit.key);
    if (!artifact) {
      missing.push_back(i);
      continue;
    }
    unit.ok = artifact->ok;
    unit.module_name = artifact->module_name;
    unit.engine_tier = artifact->primary.engine_tier;
    unit.engine_fallback = artifact->primary.engine_fallback;
    unit.cache_hit = true;
    unit.milliseconds = ms_since(probe);
    count_tiers(*artifact);
    if (spill) {
      unit.spilled = true;
    } else {
      unit.artifact =
          std::make_shared<const UnitArtifact>(std::move(*artifact));
    }
    ++response.cache_hits;
  }

  // Compile the misses on the warm driver. Under spill the misses go
  // through in chunks of spill_after: each chunk's artifacts are stored
  // to the cache directory and released before the next chunk compiles,
  // so peak memory is bounded by the chunk, not the batch.
  if (!missing.empty()) {
    BatchDriver& driver = driver_for(request.options);
    size_t chunk_size = spill ? options_.spill_after : missing.size();
    for (size_t begin = 0; begin < missing.size(); begin += chunk_size) {
      size_t end = std::min(begin + chunk_size, missing.size());
      std::vector<BatchInput> inputs;
      inputs.reserve(end - begin);
      for (size_t m = begin; m < end; ++m)
        inputs.push_back(request.units[missing[m]]);
      std::vector<BatchUnitResult> results = driver.compile_all(inputs);
      for (size_t m = begin; m < end; ++m) {
        ServiceUnit& unit = response.units[missing[m]];
        BatchUnitResult& result = results[m - begin];
        UnitArtifact artifact = artifact_from_result(result);
        unit.ok = artifact.ok;
        unit.module_name = artifact.module_name;
        unit.engine_tier = artifact.primary.engine_tier;
        unit.engine_fallback = artifact.primary.engine_fallback;
        unit.milliseconds = result.milliseconds;
        count_tiers(artifact);
        bool stored =
            cache_ != nullptr && cache_->store(unit.key, artifact);
        // Spilling drops the in-memory copy, so it is only safe when
        // the disk write actually landed: a full disk must degrade to
        // higher memory use, not to losing a finished compile.
        if (spill && stored)
          unit.spilled = true;
        else
          unit.artifact =
              std::make_shared<const UnitArtifact>(std::move(artifact));
      }
    }
    response.cache_misses = missing.size();
  }

  for (const ServiceUnit& unit : response.units)
    if (unit.spilled) ++response.spilled;
  span.arg("cache_hits", static_cast<int64_t>(response.cache_hits));
  span.arg("compiled", static_cast<int64_t>(response.cache_misses));
  response.wall_ms = span.finish_ms();

  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.histogram("service.request_ms").record(response.wall_ms);
  metrics.counter("service.requests").add(1);
  metrics.counter("service.units")
      .add(static_cast<int64_t>(request.units.size()));
  if (response.cache_hits > 0)
    metrics.counter("service.cache_hits")
        .add(static_cast<int64_t>(response.cache_hits));
  if (response.cache_misses > 0)
    metrics.counter("service.cache_misses")
        .add(static_cast<int64_t>(response.cache_misses));
  if (response.spilled > 0)
    metrics.counter("service.spilled")
        .add(static_cast<int64_t>(response.spilled));

  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.requests;
    stats_.units += request.units.size();
    stats_.compiled += response.cache_misses;
    stats_.cache_hits += response.cache_hits;
    stats_.cache_misses += response.cache_misses;
    stats_.spilled += response.spilled;
    stats_.tier_bytecode += tier_bytecode;
    stats_.tier_tree_walk += tier_tree_walk;
  }
  return response;
}

std::optional<ServiceResponse> CompileService::serve_cached(
    const ServiceRequest& request) {
  if (cache_ == nullptr || request.units.empty()) return std::nullopt;
  Clock::time_point start = Clock::now();

  ServiceResponse response;
  response.jobs = pool_.size();
  response.units.resize(request.units.size());
  for (size_t i = 0; i < request.units.size(); ++i) {
    const BatchInput& input = request.units[i];
    ServiceUnit& unit = response.units[i];
    Clock::time_point probe = Clock::now();
    unit.name = input.name;
    unit.key = cache_->key(input, request.options);
    // Existence probe only -- the artifact stays on disk until the
    // caller streams it out with artifact_bytes(). One miss and the
    // whole request goes to the compile queue instead.
    if (!cache_->contains(unit.key)) return std::nullopt;
    unit.cache_hit = true;
    unit.spilled = true;
    unit.milliseconds = ms_since(probe);
  }
  response.cache_hits = request.units.size();
  response.spilled = request.units.size();
  response.wall_ms = ms_since(start);

  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.requests;
  stats_.units += request.units.size();
  stats_.cache_hits += response.cache_hits;
  stats_.spilled += response.spilled;
  return response;
}

std::optional<UnitArtifact> CompileService::artifact(
    const ServiceUnit& unit) const {
  if (unit.artifact != nullptr) return *unit.artifact;
  if (cache_ == nullptr || unit.key.empty()) return std::nullopt;
  return cache_->load(unit.key);
}

std::optional<std::string> CompileService::artifact_bytes(
    const ServiceUnit& unit) const {
  if (unit.artifact != nullptr) {
    WireWriter writer;
    write_artifact(writer, *unit.artifact);
    return writer.take();
  }
  if (cache_ == nullptr || unit.key.empty()) return std::nullopt;
  return cache_->load_raw(unit.key);
}

std::string format_service_report(const std::vector<ServiceReportRow>& rows,
                                  const ServiceReportSummary& summary) {
  TextTable table({"Unit", "Module", "Status", "Engine", "Source",
                   "Time (ms)"});
  size_t succeeded = 0;
  size_t degraded = 0;
  for (const ServiceReportRow& row : rows) {
    if (row.ok) ++succeeded;
    if (!row.fallback.empty()) ++degraded;
    table.add_row({row.name, row.module.empty() ? "-" : row.module,
                   row.ok ? "ok" : "failed",
                   row.engine.empty() ? "-" : row.engine,
                   row.cache_hit ? "cache" : "compiled",
                   format_ms_fixed(row.milliseconds)});
  }
  std::ostringstream os;
  os << table.render();
  os << succeeded << "/" << rows.size() << " units succeeded, "
     << summary.cache_hits << " cache hits, " << summary.cache_misses
     << " compiled, -j " << summary.jobs << ", wall "
     << format_ms_fixed(summary.wall_ms) << " ms\n";
  if (degraded > 0) {
    os << "engine fallbacks:\n";
    for (const ServiceReportRow& row : rows)
      if (!row.fallback.empty())
        os << "  " << row.name << ": " << row.fallback << "\n";
  }
  return os.str();
}

std::string service_report_json(const std::vector<ServiceReportRow>& rows,
                                const ServiceReportSummary& summary) {
  size_t succeeded = 0;
  for (const ServiceReportRow& row : rows)
    if (row.ok) ++succeeded;
  std::ostringstream os;
  os << "{\n  \"summary\": {\"total\": " << rows.size()
     << ", \"succeeded\": " << succeeded
     << ", \"failed\": " << rows.size() - succeeded
     << ", \"jobs\": " << summary.jobs
     << ", \"wall_ms\": " << format_ms_fixed(summary.wall_ms)
     << ", \"cache_hits\": " << summary.cache_hits
     << ", \"cache_misses\": " << summary.cache_misses << "},\n";
  os << "  \"units\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ServiceReportRow& row = rows[i];
    os << "    {\"name\": \"" << json_escape(row.name) << "\", \"module\": \""
       << json_escape(row.module) << "\", \"ok\": "
       << (row.ok ? "true" : "false") << ", \"cache_hit\": "
       << (row.cache_hit ? "true" : "false")
       << ", \"engine\": \"" << json_escape(row.engine)
       << "\", \"fallback\": \"" << json_escape(row.fallback)
       << "\", \"ms\": " << format_ms_fixed(row.milliseconds) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

ArtifactCacheStats CompileService::cache_stats() const {
  if (cache_ == nullptr) return {};
  return cache_->stats();
}

std::string CompileService::describe_stats() const {
  ServiceStats stats = this->stats();
  std::ostringstream os;
  os << "service: " << stats.requests << " requests, " << stats.units
     << " units (" << stats.cache_hits << " cache hits, " << stats.compiled
     << " compiled, " << stats.spilled << " spilled)";
  if (stats.tier_bytecode + stats.tier_tree_walk > 0)
    os << "; engine tiers: " << stats.tier_bytecode << " bytecode, "
       << stats.tier_tree_walk << " tree-walk";
  if (cache_ != nullptr) {
    ArtifactCacheStats cache = cache_->stats();
    os << "; artifact cache: " << cache.hits << " hits, " << cache.misses
       << " misses, " << cache.stores << " stores, " << cache.evictions
       << " evicted, " << cache.corrupt << " corrupt";
    if (cache.native_hits + cache.native_misses + cache.native_stores > 0)
      os << "; native objects: " << cache.native_hits << " hits, "
         << cache.native_misses << " misses, " << cache.native_stores
         << " stores";
  }
  return os.str();
}

}  // namespace ps
