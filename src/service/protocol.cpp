#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace ps {

void WireWriter::f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

void WireReader::need(size_t n) const {
  if (data_.size() - pos_ < n) throw WireError("truncated wire data");
}

uint8_t WireReader::u8() {
  need(1);
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t WireReader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t WireReader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  uint32_t len = u32();
  if (len > kMaxFrameBytes) throw WireError("overlong string");
  need(len);
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

void WireReader::skip_str() {
  uint32_t len = u32();
  if (len > kMaxFrameBytes) throw WireError("overlong string");
  need(len);
  pos_ += len;
}

void WireReader::expect_end() const {
  if (!at_end()) throw WireError("trailing bytes after message");
}

// -- artifact serialisation -------------------------------------------------

namespace {

void write_stage(WireWriter& writer, const StageArtifact& stage) {
  writer.str(stage.source);
  writer.str(stage.schedule);
  writer.str(stage.c_code);
  writer.str(stage.graph);
  writer.str(stage.dot);
  writer.str(stage.components);
  writer.str(stage.engine_tier);
  writer.str(stage.engine_fallback);
}

StageArtifact read_stage(WireReader& reader) {
  StageArtifact stage;
  stage.source = reader.str();
  stage.schedule = reader.str();
  stage.c_code = reader.str();
  stage.graph = reader.str();
  stage.dot = reader.str();
  stage.components = reader.str();
  stage.engine_tier = reader.str();
  stage.engine_fallback = reader.str();
  return stage;
}

void skip_stage(WireReader& reader) {
  reader.skip_str();  // source
  reader.skip_str();  // schedule
  reader.skip_str();  // c_code
  reader.skip_str();  // graph
  reader.skip_str();  // dot
  reader.skip_str();  // components
  reader.skip_str();  // engine_tier
  reader.skip_str();  // engine_fallback
}

}  // namespace

void write_artifact(WireWriter& writer, const UnitArtifact& artifact) {
  writer.u8(artifact.ok ? 1 : 0);
  writer.str(artifact.diagnostics);
  writer.str(artifact.module_name);
  write_stage(writer, artifact.primary);
  writer.u8(artifact.has_transform ? 1 : 0);
  if (artifact.has_transform) {
    writer.str(artifact.transform_array);
    writer.str(artifact.transform_desc);
    writer.str(artifact.exact_nest);
    write_stage(writer, artifact.transformed);
  }
  writer.f64(artifact.compile_ms);
}

UnitArtifact read_artifact(WireReader& reader) {
  UnitArtifact artifact;
  artifact.ok = reader.u8() != 0;
  artifact.diagnostics = reader.str();
  artifact.module_name = reader.str();
  artifact.primary = read_stage(reader);
  artifact.has_transform = reader.u8() != 0;
  if (artifact.has_transform) {
    artifact.transform_array = reader.str();
    artifact.transform_desc = reader.str();
    artifact.exact_nest = reader.str();
    artifact.transformed = read_stage(reader);
  }
  artifact.compile_ms = reader.f64();
  return artifact;
}

void skip_artifact(WireReader& reader) {
  // Field for field the structure of read_artifact, lengths checked,
  // nothing materialised.
  reader.u8();        // ok
  reader.skip_str();  // diagnostics
  reader.skip_str();  // module_name
  skip_stage(reader);
  if (reader.u8() != 0) {  // has_transform
    reader.skip_str();     // transform_array
    reader.skip_str();     // transform_desc
    reader.skip_str();     // exact_nest
    skip_stage(reader);
  }
  reader.f64();  // compile_ms
}

// -- compile options --------------------------------------------------------

void write_options(WireWriter& writer, const CompileOptions& options) {
  uint32_t flags = 0;
  if (options.merge_loops) flags |= 1u << 0;
  if (options.apply_hyperplane) flags |= 1u << 1;
  if (options.exact_bounds) flags |= 1u << 2;
  if (options.emit_c_code) flags |= 1u << 3;
  if (options.emit_openmp) flags |= 1u << 4;
  if (options.use_virtual_windows) flags |= 1u << 5;
  writer.u32(flags);
  writer.u64(static_cast<uint64_t>(options.solver.bound));
}

CompileOptions read_options(WireReader& reader) {
  uint32_t flags = reader.u32();
  CompileOptions options;
  options.merge_loops = (flags & (1u << 0)) != 0;
  options.apply_hyperplane = (flags & (1u << 1)) != 0;
  options.exact_bounds = (flags & (1u << 2)) != 0;
  options.emit_c_code = (flags & (1u << 3)) != 0;
  options.emit_openmp = (flags & (1u << 4)) != 0;
  options.use_virtual_windows = (flags & (1u << 5)) != 0;
  options.solver.bound = static_cast<int64_t>(reader.u64());
  return options;
}

// -- messages ---------------------------------------------------------------

namespace {

std::string encode_compile_request_kind(const ServiceRequest& request,
                                        MsgKind kind) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(kind));
  writer.str(request.client_version);
  write_options(writer, request.options);
  writer.u32(static_cast<uint32_t>(request.units.size()));
  for (const BatchInput& unit : request.units) {
    writer.str(unit.name);
    writer.u8(unit.is_eqn ? 1 : 0);
    writer.str(unit.source);
  }
  return writer.take();
}

}  // namespace

std::string encode_compile_request(const ServiceRequest& request) {
  return encode_compile_request_kind(request, MsgKind::CompileRequest);
}

std::string encode_compile_request_v2(const ServiceRequest& request) {
  return encode_compile_request_kind(request, MsgKind::CompileRequestV2);
}

ServiceRequest decode_compile_request(std::string_view payload) {
  WireReader reader(payload);
  uint8_t kind = reader.u8();
  if (kind != static_cast<uint8_t>(MsgKind::CompileRequest) &&
      kind != static_cast<uint8_t>(MsgKind::CompileRequestV2))
    throw WireError("not a compile request");
  ServiceRequest request;
  request.client_version = reader.str();
  request.options = read_options(reader);
  uint32_t count = reader.u32();
  // No reserve(count): the count is attacker-supplied wire data, and a
  // tiny frame claiming 2^32 units must not trigger a giant upfront
  // allocation -- push_back grows geometrically and the reader throws
  // on the first unit the payload cannot actually back.
  for (uint32_t i = 0; i < count; ++i) {
    BatchInput unit;
    unit.name = reader.str();
    unit.is_eqn = reader.u8() != 0;
    unit.source = reader.str();
    request.units.push_back(std::move(unit));
  }
  reader.expect_end();
  return request;
}

std::string encode_compile_reply(const RemoteReply& reply) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(MsgKind::CompileReply));
  writer.u64(reply.cache_hits);
  writer.u64(reply.cache_misses);
  writer.u64(reply.jobs);
  writer.f64(reply.wall_ms);
  writer.u32(static_cast<uint32_t>(reply.units.size()));
  for (const RemoteUnitResult& unit : reply.units) {
    writer.str(unit.name);
    writer.u8(unit.cache_hit ? 1 : 0);
    writer.f64(unit.milliseconds);
    write_artifact(writer, unit.artifact);
  }
  return writer.take();
}

std::string encode_compile_reply_raw(size_t cache_hits, size_t cache_misses,
                                     size_t jobs, double wall_ms,
                                     const std::vector<RawUnitReply>& units) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(MsgKind::CompileReply));
  writer.u64(cache_hits);
  writer.u64(cache_misses);
  writer.u64(jobs);
  writer.f64(wall_ms);
  writer.u32(static_cast<uint32_t>(units.size()));
  for (const RawUnitReply& unit : units) {
    writer.str(unit.name);
    writer.u8(unit.cache_hit ? 1 : 0);
    writer.f64(unit.milliseconds);
    // The pre-serialised artifact splices in verbatim: the frame is
    // byte-identical to encode_compile_reply on the decoded artifact.
    writer.raw(unit.artifact_bytes);
  }
  return writer.take();
}

RemoteReply decode_compile_reply(std::string_view payload) {
  WireReader reader(payload);
  if (reader.u8() != static_cast<uint8_t>(MsgKind::CompileReply))
    throw WireError("not a compile reply");
  RemoteReply reply;
  reply.cache_hits = reader.u64();
  reply.cache_misses = reader.u64();
  reply.jobs = reader.u64();
  reply.wall_ms = reader.f64();
  uint32_t count = reader.u32();
  // Like decode_compile_request: never reserve a wire-supplied count.
  for (uint32_t i = 0; i < count; ++i) {
    RemoteUnitResult unit;
    unit.name = reader.str();
    unit.cache_hit = reader.u8() != 0;
    unit.milliseconds = reader.f64();
    unit.artifact = read_artifact(reader);
    reply.units.push_back(std::move(unit));
  }
  reader.expect_end();
  return reply;
}

// -- streamed replies -------------------------------------------------------

std::string encode_reply_begin(const ReplyBegin& begin) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(MsgKind::CompileReplyBegin));
  writer.u32(static_cast<uint32_t>(begin.unit_count));
  writer.u64(begin.jobs);
  return writer.take();
}

ReplyBegin decode_reply_begin(std::string_view payload) {
  WireReader reader(payload);
  if (reader.u8() != static_cast<uint8_t>(MsgKind::CompileReplyBegin))
    throw WireError("not a reply-begin message");
  ReplyBegin begin;
  begin.unit_count = reader.u32();
  begin.jobs = reader.u64();
  reader.expect_end();
  return begin;
}

std::string encode_unit_reply_raw(const RawUnitReply& unit) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(MsgKind::UnitReply));
  writer.str(unit.name);
  writer.u8(unit.cache_hit ? 1 : 0);
  writer.f64(unit.milliseconds);
  // Raw splice, like encode_compile_reply_raw: a spilled cache hit's
  // bytes go from the cache file to the frame without a decode.
  writer.raw(unit.artifact_bytes);
  return writer.take();
}

RemoteUnitResult decode_unit_reply(std::string_view payload) {
  WireReader reader(payload);
  if (reader.u8() != static_cast<uint8_t>(MsgKind::UnitReply))
    throw WireError("not a unit-reply message");
  RemoteUnitResult unit;
  unit.name = reader.str();
  unit.cache_hit = reader.u8() != 0;
  unit.milliseconds = reader.f64();
  unit.artifact = read_artifact(reader);
  reader.expect_end();
  return unit;
}

std::string encode_reply_end(const ReplyEnd& end) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(MsgKind::CompileReplyEnd));
  writer.u64(end.cache_hits);
  writer.u64(end.cache_misses);
  writer.f64(end.wall_ms);
  return writer.take();
}

ReplyEnd decode_reply_end(std::string_view payload) {
  WireReader reader(payload);
  if (reader.u8() != static_cast<uint8_t>(MsgKind::CompileReplyEnd))
    throw WireError("not a reply-end message");
  ReplyEnd end;
  end.cache_hits = reader.u64();
  end.cache_misses = reader.u64();
  end.wall_ms = reader.f64();
  reader.expect_end();
  return end;
}

// -- stats ------------------------------------------------------------------

std::string encode_stats_request(bool json) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(MsgKind::StatsRequest));
  writer.u8(json ? 1 : 0);
  return writer.take();
}

bool decode_stats_request(std::string_view payload) {
  WireReader reader(payload);
  if (reader.u8() != static_cast<uint8_t>(MsgKind::StatsRequest))
    throw WireError("not a stats request");
  bool json = reader.u8() != 0;
  reader.expect_end();
  return json;
}

std::string encode_simple(MsgKind kind, std::string_view text) {
  WireWriter writer;
  writer.u8(static_cast<uint8_t>(kind));
  if (kind == MsgKind::Error || kind == MsgKind::Busy ||
      kind == MsgKind::StatsReply)
    writer.str(text);
  return writer.take();
}

MsgKind peek_kind(std::string_view payload) {
  if (payload.empty()) throw WireError("empty message");
  return static_cast<MsgKind>(static_cast<uint8_t>(payload[0]));
}

std::string decode_text(std::string_view payload, MsgKind kind) {
  WireReader reader(payload);
  if (reader.u8() != static_cast<uint8_t>(kind))
    throw WireError("unexpected message kind for text payload");
  std::string text = reader.str();
  reader.expect_end();
  return text;
}

std::string decode_error(std::string_view payload) {
  return decode_text(payload, MsgKind::Error);
}

// -- framing ----------------------------------------------------------------

namespace {

bool write_all(int fd, const char* data, size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a client that disconnected mid-reply must surface
    // as EPIPE on this call, not SIGPIPE the whole daemon. Frames also
    // travel over pipes in the tests, where send() is ENOTSOCK --
    // fall through to plain write() there.
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-frame
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  char header[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  return write_all(fd, header, 4) &&
         write_all(fd, payload.data(), payload.size());
}

std::optional<std::string> read_frame(int fd) {
  char header[4];
  if (!read_all(fd, header, 4)) return std::nullopt;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  if (len > kMaxFrameBytes) return std::nullopt;
  std::string payload(len, '\0');
  if (len > 0 && !read_all(fd, payload.data(), len)) return std::nullopt;
  return payload;
}

}  // namespace ps
