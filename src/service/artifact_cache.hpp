#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "driver/batch_driver.hpp"
#include "driver/compile_types.hpp"
#include "runtime/native_engine.hpp"

namespace ps {

/// The printable artefacts of one pipeline stage (primary or
/// hyperplane-transformed module) -- everything the client-facing
/// render paths need, with no live AST behind it.
struct StageArtifact {
  std::string source;      // pretty-printed PS (psc --source)
  std::string schedule;    // flowchart text (psc --schedule, the default)
  std::string c_code;      // generated C (psc --c)
  std::string graph;       // dependency-graph inventory (psc --graph)
  std::string dot;         // Graphviz DOT (psc --dot)
  std::string components;  // MSCC table (psc --components)
  /// The compiled runtime tier the stage's module reaches ("bytecode",
  /// or "tree-walk" with the rendered "<tier>: <cause>" next to it) --
  /// probe_engine_tier at artifact-build time, so batch reports and the
  /// daemon's tier counters never need a live CompileResult.
  std::string engine_tier;
  std::string engine_fallback;
};

/// The cached result of compiling one unit: the compile service's unit
/// of storage and the daemon protocol's unit of transfer. Rendering
/// one of these for any supported flag set is byte-identical to what a
/// cold one-shot psc run prints -- that is the cache's correctness
/// contract, enforced by the service tests.
struct UnitArtifact {
  bool ok = false;
  std::string diagnostics;  // rendered, labelled with the unit name
  std::string module_name;  // empty for failed units
  StageArtifact primary;
  bool has_transform = false;
  std::string transform_array;  // hyperplane candidate array
  std::string transform_desc;   // HyperplaneTransform::describe()
  std::string exact_nest;       // Lamport bounds text (may be empty)
  StageArtifact transformed;    // meaningful when has_transform
  double compile_ms = 0;        // pipeline wall time of the original compile
};

struct ArtifactCacheOptions {
  /// Cache directory; created on first store. Must be non-empty.
  std::string dir;
  /// Evict least-recently-used artifacts once the directory exceeds
  /// this many bytes (0 = unlimited).
  size_t max_bytes = 0;
  /// Compiler version folded into every key (tests inject fake
  /// versions to prove a version bump invalidates).
  std::string version = kPscVersion;
};

struct ArtifactCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t stores = 0;
  size_t evictions = 0;
  /// Unreadable entries (truncated, bad magic, decode failure): each
  /// counts as a miss too, and the bad file is removed so it cannot
  /// keep wasting probes.
  size_t corrupt = 0;
  /// Native-tier shared objects (the `.so` siblings of the `.art`
  /// entries), counted separately so warm-vs-cold native sessions are
  /// observable next to the text-artifact traffic.
  size_t native_hits = 0;
  size_t native_misses = 0;
  size_t native_stores = 0;
  /// Entries removed by prune_older_than (the daemon's TTL janitor),
  /// counted separately from LRU evictions.
  size_t ttl_pruned = 0;
};

/// A content-addressed on-disk artifact cache. Keys are
/// SHA-256(compiler version, compile-options fingerprint, unit name,
/// eqn flag, source bytes); values are serialised UnitArtifacts in
/// `<dir>/<hex key>.art`. A hit bypasses the whole pass pipeline; any
/// doubt (missing file, truncation, corruption, version skew) is a
/// miss that recompiles -- the cache can serve stale bytes only if
/// SHA-256 collides.
///
/// Writes go through a temp file + atomic rename, so concurrent
/// clients (or a daemon racing a one-shot psc) never observe a
/// half-written artifact. Thread-safe.
///
/// The cache doubles as the native tier's NativeObjectStore: compiled
/// shared objects live as `<hex key>.so` next to the `.art` text
/// artifacts (the key already folds in the `cc` fingerprint, see
/// native_kernel_key). Eviction covers both kinds by LRU, but never
/// unlinks a `.so` still dlopen-ed by a live NativeModule
/// (native_object_in_use) -- pulling mapped code's backing file out
/// from under a running wavefront stays impossible by construction.
class ArtifactCache : public NativeObjectStore {
 public:
  explicit ArtifactCache(ArtifactCacheOptions options);

  /// The cache key of one compilation unit under `options`.
  [[nodiscard]] std::string key(const BatchInput& input,
                                const CompileOptions& options) const;

  /// Load the artifact stored under `key`; nullopt (and a recorded
  /// miss) when absent or unreadable.
  [[nodiscard]] std::optional<UnitArtifact> load(const std::string& key);

  /// The raw serialised bytes (write_artifact encoding) stored under
  /// `key`, structurally validated -- every length walked, nothing
  /// decoded into a UnitArtifact. The daemon splices these straight
  /// into a reply frame, so a spilled cache hit is read and validated
  /// once instead of decoded from disk and re-encoded onto the wire.
  /// Corrupt entries are treated exactly like load(): counted, deleted,
  /// and never served.
  [[nodiscard]] std::optional<std::string> load_raw(const std::string& key);

  /// Existence probe: true when an artifact file is present under
  /// `key`. No validation, no LRU refresh, no hit/miss accounting --
  /// the daemon's reactor uses this to decide whether a request can be
  /// served inline from the cache or must be queued for compilation,
  /// and only the actual load() / load_raw() counts. A probe that says
  /// true can still miss at load time (eviction race, corruption); the
  /// caller must handle that.
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Store `artifact` under `key`. Returns false when the directory or
  /// file cannot be written (the caller keeps its in-memory copy).
  bool store(const std::string& key, const UnitArtifact& artifact);

  /// Remove every .art / .so entry whose mtime is older than now - ttl.
  /// Because every load refreshes the timestamp, this is an idle-time
  /// TTL: entries served within the window survive. Shared objects
  /// still dlopen-ed by a live NativeModule are spared regardless of
  /// age (same pinned-.so rule as LRU eviction). Returns the number of
  /// files removed; the daemon's janitor thread calls this on a timer.
  size_t prune_older_than(std::chrono::seconds ttl);

  /// Canonical serialisation of every CompileOptions field that can
  /// change compile output; part of the key.
  [[nodiscard]] static std::string options_fingerprint(
      const CompileOptions& options);

  // NativeObjectStore: `.so` siblings of the text artifacts.
  [[nodiscard]] std::optional<std::filesystem::path> native_lookup(
      const std::string& key) override;
  [[nodiscard]] std::optional<std::filesystem::path> native_publish(
      const std::string& key, const std::string& so_bytes) override;
  void native_discard(const std::string& key) override;

  [[nodiscard]] ArtifactCacheStats stats() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }
  [[nodiscard]] const std::string& version() const {
    return options_.version;
  }

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  [[nodiscard]] std::string so_path_for(const std::string& key) const;
  /// Shared skeleton of load()/load_raw(): read the cache file, check
  /// the magic, structurally validate the payload (zero-copy walk),
  /// refresh the LRU timestamp and account hits -- or treat the entry
  /// as corrupt (counted, deleted, never served). Returns the payload
  /// with the magic header stripped.
  [[nodiscard]] std::optional<std::string> read_validated(
      const std::string& key);
  void evict_over_budget(const std::string& keep_path);

  ArtifactCacheOptions options_;
  mutable std::mutex mutex_;
  ArtifactCacheStats stats_;
  /// Running estimate of the directory's .art + .so bytes (-1 = not yet
  /// scanned). Maintained incrementally so a store only pays the full
  /// directory walk when the budget is actually exceeded, not on
  /// every write of a large spill batch.
  int64_t dir_bytes_ = -1;
};

}  // namespace ps
