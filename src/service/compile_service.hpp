#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "driver/batch_driver.hpp"
#include "runtime/thread_pool.hpp"
#include "service/artifact_cache.hpp"

namespace ps {

/// One compile request: N units under one set of compile options (the
/// shape a daemon client sends, and what `psc --cache-dir` routes its
/// command line through).
struct ServiceRequest {
  CompileOptions options;
  std::vector<BatchInput> units;
  /// The requesting compiler's version. The daemon refuses requests
  /// from a different build: a stale daemon silently serving output
  /// from an older pipeline would break the byte-identity contract
  /// (the client falls back to in-process compilation instead).
  std::string client_version = kPscVersion;
};

struct ServiceUnit {
  std::string name;
  /// Compiled module name (empty for failed units); carried so report
  /// modes can be served without reloading (or recompiling) artifacts.
  std::string module_name;
  /// The primary stage's compiled runtime tier and rendered fallback
  /// cause (StageArtifact::engine_tier/engine_fallback); empty for
  /// failed units and for spilled units (not decoded on this path).
  std::string engine_tier;
  std::string engine_fallback;
  bool ok = false;
  bool cache_hit = false;
  /// The artifact lives only in the cache directory (oversized batch);
  /// fetch it with CompileService::artifact().
  bool spilled = false;
  std::string key;  // artifact-cache key; empty when the cache is off
  double milliseconds = 0;  // this request's cost (lookup or compile)
  std::shared_ptr<const UnitArtifact> artifact;  // null when spilled
};

/// One response, units in request order.
struct ServiceResponse {
  std::vector<ServiceUnit> units;
  size_t cache_hits = 0;
  size_t cache_misses = 0;  // units that went through the pipeline
  size_t spilled = 0;
  size_t jobs = 1;
  double wall_ms = 0;
};

/// Lifetime statistics of one service session.
struct ServiceStats {
  size_t requests = 0;
  size_t units = 0;
  size_t compiled = 0;  // pipeline runs (cache misses or cache off)
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t spilled = 0;
  /// Engine-tier counters over every *stage* (primary and transformed)
  /// of every decoded artifact: which compiled runtime tier the stage's
  /// module reaches. Both runners sit on the same EngineHost ladder, so
  /// one pair of counters covers the flowchart interpreter and the
  /// wavefront runner alike (psc --daemon-stats aggregates these).
  size_t tier_bytecode = 0;
  size_t tier_tree_walk = 0;
};

struct ServiceOptions {
  /// Worker count of the warm pool (like psc -j: 0 = all cores). The
  /// pool is created once and reused by every request.
  size_t jobs = 1;
  /// Artifact-cache directory; empty disables the disk cache (every
  /// unit compiles, nothing spills).
  std::string cache_dir;
  size_t cache_max_bytes = 0;  // see ArtifactCacheOptions::max_bytes
  /// Batches with more units than this spill per-unit artifacts to the
  /// cache directory instead of holding them all in memory (0 = never
  /// spill). Requires cache_dir.
  size_t spill_after = 0;
  /// Version folded into cache keys (tests override).
  std::string version = kPscVersion;
};

/// A warm compile session: the long-lived object behind the daemon
/// (and behind `psc --cache-dir` for one-shot incremental builds). It
/// owns the worker pool, the per-option-set BatchDrivers -- and with
/// them the memoised hyperplane solutions and the interned symbol
/// table, which stay warm across requests -- plus the content-hash
/// artifact cache that lets an unchanged unit skip the pass pipeline
/// entirely.
///
/// Determinism contract, inherited from BatchDriver and extended to
/// the cache: a unit's artifact is byte-identical whether it was
/// compiled cold, compiled warm, or served from the cache, at any job
/// count. compile() is thread-safe (concurrent daemon clients
/// serialise on one session).
class CompileService {
 public:
  explicit CompileService(ServiceOptions options = {});

  /// Compile (or fetch) every unit of `request`.
  [[nodiscard]] ServiceResponse compile(const ServiceRequest& request);

  /// Serve `request` purely from the artifact cache, without touching
  /// the compile pipeline or its lock: probe every unit's key with
  /// ArtifactCache::contains() and answer only when every unit is
  /// present (nullopt otherwise -- the caller queues the request for
  /// compile()). The returned units are marked spilled: fetch bytes
  /// per unit with artifact_bytes(), which is when the cache counts
  /// the hit. Never blocks behind an in-flight compile, so the
  /// daemon's reactor can call it inline; `ok`/`module_name` are left
  /// unset (the artifact is not decoded here).
  [[nodiscard]] std::optional<ServiceResponse> serve_cached(
      const ServiceRequest& request);

  /// The artifact of `unit`, reloading spilled ones from the cache
  /// directory. nullopt only when a spilled artifact was evicted
  /// under us (configure spill_after together with an adequate
  /// cache_max_bytes).
  [[nodiscard]] std::optional<UnitArtifact> artifact(
      const ServiceUnit& unit) const;

  /// The artifact of `unit` as its serialised wire bytes (the
  /// write_artifact encoding). In-memory artifacts encode once; spilled
  /// ones come straight from the cache file, validated but not decoded,
  /// so the daemon reply path never pays the old decode-then-re-encode
  /// double hop for a spilled cache hit.
  [[nodiscard]] std::optional<std::string> artifact_bytes(
      const ServiceUnit& unit) const;

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] ArtifactCacheStats cache_stats() const;
  [[nodiscard]] bool cache_enabled() const { return cache_ != nullptr; }
  /// The cache as the native tier's shared-object store (nullptr when
  /// caching is disabled); wire into WavefrontOptions::native_store so
  /// warm sessions load machine code without invoking `cc`.
  [[nodiscard]] NativeObjectStore* native_store() const {
    return cache_.get();
  }
  /// The artifact cache itself (nullptr when caching is disabled); the
  /// daemon's janitor prunes through it and the stats endpoint reads it.
  [[nodiscard]] ArtifactCache* artifact_cache() const { return cache_.get(); }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// One-line session summary (daemon logs, psc --verbose).
  [[nodiscard]] std::string describe_stats() const;

 private:
  BatchDriver& driver_for(const CompileOptions& options);

  ServiceOptions options_;
  ThreadPool pool_;
  /// One warm BatchDriver (hyperplane cache + symbol table) per
  /// distinct option fingerprint seen on this session.
  std::map<std::string, std::unique_ptr<BatchDriver>> drivers_;
  std::unique_ptr<ArtifactCache> cache_;
  ServiceStats stats_;
  /// Serialises compile() (BatchDriver is single-caller).
  mutable std::mutex mutex_;
  /// Guards stats_ alone, so stats() and serve_cached() answer
  /// instantly while a long compile holds mutex_. Lock order:
  /// mutex_ before stats_mutex_, never the reverse.
  mutable std::mutex stats_mutex_;
};

/// Build the cacheable artifact bundle from one batch unit result
/// (renders the schedule/source/C text the client paths print).
[[nodiscard]] UnitArtifact artifact_from_result(const BatchUnitResult& unit);

/// Flags of the psc output surface an artifact can reproduce. The
/// structural dumps (--graph, --dot, --components) render from text
/// captured at artifact-build time, so the service path serves them
/// without a live CompileResult.
struct RenderFlags {
  bool source = false;
  bool schedule = false;
  bool c_code = false;
  bool graph = false;
  bool dot = false;
  bool components = false;
};

/// The MSCC table of one compiled stage (psc --components), rendered
/// once here so the live driver path and the cached artifact are
/// byte-identical by construction.
[[nodiscard]] std::string components_table(const CompiledModule& stage);

/// Render `artifact` exactly as a one-shot `psc` run with the same
/// flags prints a successful unit to stdout (diagnostics are not
/// included; they go to stderr, in unit order).
[[nodiscard]] std::string render_artifact(const UnitArtifact& artifact,
                                          const RenderFlags& flags);

// -- batch reports over cached artifacts ------------------------------------
//
// `psc --batch-report` used to force an in-process compile even when
// every unit was a cache hit: the report renderer only understood live
// BatchUnitResults. These shapes let the driver build the report from
// whatever the service (or the daemon) answered -- artifact metadata is
// all it needs -- so a warm report costs cache probes, not compiles.

/// One row of a service batch report, buildable from a ServiceResponse
/// unit or a daemon RemoteUnitResult alike.
struct ServiceReportRow {
  std::string name;
  std::string module;  // empty for failed units
  bool ok = false;
  bool cache_hit = false;
  double milliseconds = 0;  // this request's cost (probe or compile)
  /// Compiled runtime tier of the primary stage plus the rendered
  /// fallback cause, from the artifact metadata ("-" when unknown).
  std::string engine;
  std::string fallback;
};

struct ServiceReportSummary {
  size_t jobs = 1;
  double wall_ms = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Human-readable service batch report (psc --batch-report on the
/// cached/daemon path): the per-unit table plus a summary line with the
/// cache split instead of the in-process pipeline statistics.
[[nodiscard]] std::string format_service_report(
    const std::vector<ServiceReportRow>& rows,
    const ServiceReportSummary& summary);

/// Machine-readable service batch report (psc --batch-report --json).
[[nodiscard]] std::string service_report_json(
    const std::vector<ServiceReportRow>& rows,
    const ServiceReportSummary& summary);

}  // namespace ps
