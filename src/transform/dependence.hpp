#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "frontend/sema.hpp"
#include "support/diagnostics.hpp"

namespace ps {

/// The constant-offset self-dependences of one recursively defined array
/// (paper section 4): for each reference A[x - d] inside an equation
/// defining A[x], the dependence vector d (in array-dimension order).
struct DependenceSet {
  std::string array;
  /// Index variable of each array dimension (taken from the recursive
  /// defining equation), e.g. (K, I, J).
  std::vector<std::string> vars;
  /// One vector per self-reference; d[p] = write index - read index in
  /// dimension p. The relaxation of Equation 2 yields
  /// (1,0,0) (0,0,1) (0,1,0) (1,0,-1) (1,-1,0).
  std::vector<std::vector<int64_t>> vectors;

  [[nodiscard]] size_t dims() const { return vars.size(); }
};

/// Extract the self-dependence vectors of `array` from its defining
/// equations. Fails (with a diagnostic) when a self-reference is not in
/// constant-offset form or sits at an inconsistent position -- such
/// recurrences are outside the scope of the paper's transformation.
[[nodiscard]] std::optional<DependenceSet> extract_dependences(
    const CheckedModule& module, const std::string& array,
    DiagnosticEngine& diags);

/// Arrays worth attempting to transform: local arrays with at least one
/// self-dependence that forces an iterative inner loop (some dependence
/// vector has a nonzero component besides the first schedulable one).
[[nodiscard]] std::vector<std::string> transform_candidates(
    const CheckedModule& module);

}  // namespace ps
