#include "transform/dependence.hpp"

#include <algorithm>

namespace ps {

std::optional<DependenceSet> extract_dependences(const CheckedModule& module,
                                                 const std::string& array,
                                                 DiagnosticEngine& diags) {
  const DataItem* item = module.find_data(array);
  if (item == nullptr) {
    diags.error({}, "no data item named '" + array + "'");
    return std::nullopt;
  }
  size_t n = item->rank();
  if (n == 0) {
    diags.error(item->loc, "'" + array + "' is scalar; nothing to transform");
    return std::nullopt;
  }

  DependenceSet out;
  out.array = array;
  out.vars.assign(n, "");

  for (const CheckedEquation& eq : module.equations) {
    if (module.data[eq.target].name != array) continue;

    // Map array dimension -> this equation's loop variable.
    std::vector<std::string> dim_var(n, "");
    for (const LoopDim& dim : eq.loop_dims) dim_var[dim.lhs_dim] = dim.var;

    for (const ArrayRefInfo& ref : eq.array_refs) {
      if (ref.array != array) continue;
      std::vector<int64_t> d(n, 0);
      bool nonzero = false;
      for (size_t p = 0; p < n; ++p) {
        const SubscriptInfo& sub = ref.subs[p];
        if (sub.kind != SubscriptInfo::Kind::IndexVar) {
          diags.error(eq.loc,
                      eq.display_name + ": self-reference to '" + array +
                          "' uses non-constant-offset subscript '" +
                          sub.display() + "' in dimension " +
                          std::to_string(p + 1) +
                          "; the hyperplane method does not apply");
          return std::nullopt;
        }
        if (dim_var[p].empty() || sub.var != dim_var[p]) {
          diags.error(eq.loc, eq.display_name + ": self-reference to '" +
                                  array + "' uses index variable '" + sub.var +
                                  "' at an inconsistent position");
          return std::nullopt;
        }
        d[p] = -sub.offset;  // write x reads x + offset, so d = -offset
        if (d[p] != 0) nonzero = true;
      }
      if (!nonzero) {
        diags.error(eq.loc, eq.display_name + ": '" + array +
                                "' depends on itself at the same indices");
        return std::nullopt;
      }
      if (std::find(out.vectors.begin(), out.vectors.end(), d) ==
          out.vectors.end())
        out.vectors.push_back(std::move(d));
    }

    // Record the loop variables of the recursive equation (any defining
    // equation that loops over every dimension).
    bool full = std::all_of(dim_var.begin(), dim_var.end(),
                            [](const std::string& v) { return !v.empty(); });
    if (full) {
      for (size_t p = 0; p < n; ++p)
        if (out.vars[p].empty()) out.vars[p] = dim_var[p];
    }
  }

  if (out.vectors.empty()) {
    diags.error(item->loc, "'" + array + "' has no self-dependences; the "
                           "schedule is already parallel");
    return std::nullopt;
  }
  for (size_t p = 0; p < n; ++p) {
    if (out.vars[p].empty()) {
      // Fall back to the dimension's subrange name.
      out.vars[p] = item->dims[p]->name.empty()
                        ? "d" + std::to_string(p + 1)
                        : item->dims[p]->name;
    }
  }
  return out;
}

std::vector<std::string> transform_candidates(const CheckedModule& module) {
  std::vector<std::string> out;
  for (const DataItem& item : module.data) {
    if (item.cls != DataClass::Local || item.rank() == 0) continue;
    // Does some defining equation reference the item itself with a
    // constant offset that is not confined to the first dimension?
    bool candidate = false;
    for (const CheckedEquation& eq : module.equations) {
      if (module.data[eq.target].name != item.name) continue;
      for (const ArrayRefInfo& ref : eq.array_refs) {
        if (ref.array != item.name) continue;
        for (size_t p = 1; p < ref.subs.size(); ++p) {
          const SubscriptInfo& sub = ref.subs[p];
          if (sub.kind == SubscriptInfo::Kind::IndexVar && sub.offset != 0)
            candidate = true;
        }
      }
    }
    if (candidate) out.push_back(item.name);
  }
  return out;
}

}  // namespace ps
