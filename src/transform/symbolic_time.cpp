#include "transform/symbolic_time.hpp"

#include <algorithm>
#include <cstdlib>

#include "transform/polyhedron.hpp"

namespace ps {

std::vector<int64_t> SymbolicDependence::instantiate(
    const std::map<std::string, int64_t>& values) const {
  std::vector<int64_t> out = constant;
  for (const auto& [sym, coeffs] : symbol_coeffs) {
    int64_t v = values.at(sym);
    for (size_t p = 0; p < out.size(); ++p) out[p] += coeffs[p] * v;
  }
  return out;
}

std::string SymbolicDependence::to_string() const {
  std::string out = "(";
  for (size_t p = 0; p < constant.size(); ++p) {
    if (p > 0) out += ", ";
    std::string comp = std::to_string(constant[p]);
    for (const auto& [sym, coeffs] : symbol_coeffs) {
      if (coeffs[p] == 0) continue;
      if (coeffs[p] > 0)
        comp += " + " + (coeffs[p] == 1 ? sym
                                        : std::to_string(coeffs[p]) + sym);
      else
        comp += " - " + (coeffs[p] == -1 ? sym
                                         : std::to_string(-coeffs[p]) + sym);
    }
    out += comp;
  }
  return out + ")";
}

bool satisfies_symbolic(const std::vector<int64_t>& coeffs,
                        const std::vector<SymbolicDependence>& dependences) {
  for (const SymbolicDependence& d : dependences) {
    if (d.dims() != coeffs.size()) return false;
    // a . coeffs[s] >= 0 for each symbol (otherwise a large m_s drives
    // the dot product below 1).
    int64_t corner = 0;
    for (size_t p = 0; p < coeffs.size(); ++p)
      corner += coeffs[p] * d.constant[p];
    for (const auto& [sym, sc] : d.symbol_coeffs) {
      int64_t dot = 0;
      for (size_t p = 0; p < coeffs.size(); ++p) dot += coeffs[p] * sc[p];
      if (dot < 0) return false;
      corner += dot;  // m_s = 1 contributes one copy
    }
    if (corner < 1) return false;
  }
  return true;
}

namespace {

/// Branch-and-bound over [-bound, bound]^n, minimising sum |a| with a
/// lexicographic tie-break, exactly as the plain solver -- but against
/// two constraint families: the m = 1 corner vectors must reach >= 1
/// and every per-symbol coefficient vector must reach >= 0.
struct SymbolicSearch {
  struct Constraint {
    std::vector<int64_t> vec;
    int64_t min_value = 1;
  };

  std::vector<Constraint> constraints;
  int64_t bound;
  size_t n;
  std::vector<int64_t> current;
  std::vector<int64_t> partial;
  std::vector<std::vector<int64_t>> tail_mass;
  int64_t current_cost = 0;

  std::optional<std::vector<int64_t>> best;
  int64_t best_cost = 0;

  SymbolicSearch(std::vector<Constraint> cs, int64_t b, size_t dims)
      : constraints(std::move(cs)), bound(b), n(dims) {
    current.assign(n, 0);
    partial.assign(constraints.size(), 0);
    tail_mass.assign(constraints.size(), std::vector<int64_t>(n + 1, 0));
    for (size_t i = 0; i < constraints.size(); ++i)
      for (size_t k = n; k-- > 0;)
        tail_mass[i][k] =
            tail_mass[i][k + 1] + bound * std::abs(constraints[i].vec[k]);
  }

  bool better_than_best(int64_t cost) const {
    if (!best) return true;
    if (cost != best_cost) return cost < best_cost;
    return current < *best;
  }

  void dfs(size_t k) {
    if (best && current_cost > best_cost) return;
    if (k == n) {
      for (size_t i = 0; i < constraints.size(); ++i)
        if (partial[i] < constraints[i].min_value) return;
      if (better_than_best(current_cost)) {
        best = current;
        best_cost = current_cost;
      }
      return;
    }
    for (size_t i = 0; i < constraints.size(); ++i)
      if (partial[i] + tail_mass[i][k] < constraints[i].min_value) return;

    for (int64_t mag = 0; mag <= bound; ++mag) {
      for (int sign : {+1, -1}) {
        if (mag == 0 && sign < 0) continue;
        int64_t v = sign * mag;
        current[k] = v;
        current_cost += mag;
        for (size_t i = 0; i < constraints.size(); ++i)
          partial[i] += v * constraints[i].vec[k];
        dfs(k + 1);
        for (size_t i = 0; i < constraints.size(); ++i)
          partial[i] -= v * constraints[i].vec[k];
        current_cost -= mag;
        current[k] = 0;
      }
    }
  }
};

}  // namespace

std::optional<std::vector<int64_t>> solve_time_function_symbolic(
    const std::vector<SymbolicDependence>& dependences,
    const TimeFunctionOptions& options) {
  if (dependences.empty()) return std::nullopt;
  size_t n = dependences.front().dims();
  std::vector<SymbolicSearch::Constraint> constraints;
  for (const SymbolicDependence& d : dependences) {
    if (d.dims() != n) return std::nullopt;
    SymbolicSearch::Constraint corner;
    corner.vec = d.constant;
    corner.min_value = 1;
    for (const auto& [sym, sc] : d.symbol_coeffs) {
      if (sc.size() != n) return std::nullopt;
      for (size_t p = 0; p < n; ++p) corner.vec[p] += sc[p];
      constraints.push_back(SymbolicSearch::Constraint{sc, 0});
    }
    constraints.push_back(std::move(corner));
  }

  SymbolicSearch search(std::move(constraints), options.bound, n);
  search.dfs(0);
  return search.best;
}

std::optional<SymbolicDependenceSet> extract_symbolic_dependences(
    const CheckedModule& module, const std::string& array,
    const std::vector<std::string>& positive_params,
    DiagnosticEngine& diags) {
  const DataItem* item = module.find_data(array);
  if (item == nullptr) {
    diags.error({}, "no data item named '" + array + "'");
    return std::nullopt;
  }
  size_t n = item->rank();
  if (n == 0) {
    diags.error(item->loc, "'" + array + "' is scalar; nothing to transform");
    return std::nullopt;
  }

  auto is_symbol = [&](const std::string& name) {
    return std::find(positive_params.begin(), positive_params.end(), name) !=
           positive_params.end();
  };

  SymbolicDependenceSet out;
  out.array = array;
  out.vars.assign(n, "");
  out.symbols = positive_params;

  for (const CheckedEquation& eq : module.equations) {
    if (module.data[eq.target].name != array) continue;
    std::vector<std::string> dim_var(n, "");
    for (const LoopDim& dim : eq.loop_dims) dim_var[dim.lhs_dim] = dim.var;

    for (const ArrayRefInfo& ref : eq.array_refs) {
      if (ref.array != array) continue;
      SymbolicDependence d;
      d.constant.assign(n, 0);
      bool nonzero = false;
      for (size_t p = 0; p < n; ++p) {
        const SubscriptInfo& sub = ref.subs[p];
        if (dim_var[p].empty()) {
          diags.error(eq.loc, eq.display_name + ": dimension " +
                                  std::to_string(p + 1) + " of '" + array +
                                  "' has no loop variable");
          return std::nullopt;
        }
        if (sub.kind == SubscriptInfo::Kind::IndexVar) {
          if (sub.var != dim_var[p]) {
            diags.error(eq.loc, eq.display_name +
                                    ": self-reference uses index '" +
                                    sub.var + "' at an inconsistent position");
            return std::nullopt;
          }
          d.constant[p] = -sub.offset;
          if (sub.offset != 0) nonzero = true;
          continue;
        }
        // General subscript: must be affine with unit coefficient on
        // the dimension's own variable and symbols/constants otherwise.
        auto form = sub.expr == nullptr ? std::nullopt
                                        : affine_from_expr(*sub.expr);
        if (!form || form->coeff(dim_var[p]) != Rational(1)) {
          diags.error(eq.loc, eq.display_name + ": self-reference subscript '" +
                                  sub.display() +
                                  "' is outside the symbolic-offset fragment");
          return std::nullopt;
        }
        if (!form->constant.is_integer()) {
          diags.error(eq.loc, eq.display_name + ": non-integer offset");
          return std::nullopt;
        }
        d.constant[p] = -form->constant.as_integer();
        if (d.constant[p] != 0) nonzero = true;
        for (const auto& [name, coeff] : form->coeffs) {
          if (name == dim_var[p]) continue;
          if (!is_symbol(name)) {
            diags.error(eq.loc,
                        eq.display_name + ": subscript mentions '" + name +
                            "', which is not a declared positive parameter");
            return std::nullopt;
          }
          if (!coeff.is_integer()) {
            diags.error(eq.loc, eq.display_name + ": non-integer symbolic "
                                                  "coefficient");
            return std::nullopt;
          }
          auto [it, inserted] =
              d.symbol_coeffs.try_emplace(name, std::vector<int64_t>(n, 0));
          it->second[p] = -coeff.as_integer();
          nonzero = true;
        }
      }
      if (!nonzero) {
        diags.error(eq.loc, eq.display_name + ": '" + array +
                                "' depends on itself at the same indices");
        return std::nullopt;
      }
      out.vectors.push_back(std::move(d));
    }

    bool full = std::all_of(dim_var.begin(), dim_var.end(),
                            [](const std::string& v) { return !v.empty(); });
    if (full)
      for (size_t p = 0; p < n; ++p)
        if (out.vars[p].empty()) out.vars[p] = dim_var[p];
  }

  if (out.vectors.empty()) {
    diags.error(item->loc, "'" + array + "' has no self-dependences");
    return std::nullopt;
  }
  for (size_t p = 0; p < n; ++p)
    if (out.vars[p].empty())
      out.vars[p] = item->dims[p]->name.empty() ? "d" + std::to_string(p + 1)
                                                : item->dims[p]->name;
  return out;
}

}  // namespace ps
