#include "transform/polyhedron.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace ps {

namespace {

/// Floor division with sign-correct rounding for negative numerators.
int64_t floor_div(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t ceil_div(int64_t a, int64_t b) { return -floor_div(-a, b); }

}  // namespace

// ---------------------------------------------------------------------------
// AffineForm
// ---------------------------------------------------------------------------

Rational AffineForm::coeff(std::string_view var) const {
  auto it = coeffs.find(std::string(var));
  return it == coeffs.end() ? Rational(0) : it->second;
}

void AffineForm::add_term(const std::string& var, Rational c) {
  if (c.is_zero()) return;
  auto [it, inserted] = coeffs.emplace(var, c);
  if (!inserted) {
    it->second += c;
    if (it->second.is_zero()) coeffs.erase(it);
  }
}

AffineForm AffineForm::plus(const AffineForm& other) const {
  AffineForm out = *this;
  out.constant += other.constant;
  for (const auto& [v, c] : other.coeffs) out.add_term(v, c);
  return out;
}

AffineForm AffineForm::minus(const AffineForm& other) const {
  AffineForm out = *this;
  out.constant -= other.constant;
  for (const auto& [v, c] : other.coeffs) out.add_term(v, -c);
  return out;
}

AffineForm AffineForm::scaled(Rational factor) const {
  AffineForm out;
  if (factor.is_zero()) return out;
  out.constant = constant * factor;
  for (const auto& [v, c] : coeffs) out.coeffs.emplace(v, c * factor);
  return out;
}

void AffineForm::normalize() {
  for (auto it = coeffs.begin(); it != coeffs.end();) {
    if (it->second.is_zero())
      it = coeffs.erase(it);
    else
      ++it;
  }
}

bool AffineForm::is_constant() const {
  return std::all_of(coeffs.begin(), coeffs.end(),
                     [](const auto& p) { return p.second.is_zero(); });
}

std::optional<Rational> AffineForm::evaluate(const IntEnv& env) const {
  Rational total = constant;
  for (const auto& [v, c] : coeffs) {
    if (c.is_zero()) continue;
    auto it = env.find(v);
    if (it == env.end()) return std::nullopt;
    total += c * Rational(it->second);
  }
  return total;
}

std::string AffineForm::to_string() const {
  std::string out;
  for (const auto& [v, c] : coeffs) {
    if (c.is_zero()) continue;
    if (out.empty()) {
      if (c == Rational(1))
        out = v;
      else if (c == Rational(-1))
        out = "-" + v;
      else
        out = c.to_string() + "*" + v;
    } else {
      Rational a = c;
      out += (a > Rational(0)) ? " + " : " - ";
      if (a < Rational(0)) a = -a;
      if (a == Rational(1))
        out += v;
      else
        out += a.to_string() + "*" + v;
    }
  }
  if (out.empty()) return constant.to_string();
  if (constant > Rational(0)) out += " + " + constant.to_string();
  if (constant < Rational(0)) out += " - " + (-constant).to_string();
  return out;
}

std::optional<AffineForm> affine_from_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      AffineForm f;
      f.constant = Rational(static_cast<const IntLitExpr&>(e).value);
      return f;
    }
    case ExprKind::Name: {
      AffineForm f;
      f.add_term(static_cast<const NameExpr&>(e).name, Rational(1));
      return f;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op != UnaryOp::Neg) return std::nullopt;
      auto inner = affine_from_expr(*u.operand);
      if (!inner) return std::nullopt;
      return inner->scaled(Rational(-1));
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto lhs = affine_from_expr(*b.lhs);
      auto rhs = affine_from_expr(*b.rhs);
      if (!lhs || !rhs) return std::nullopt;
      switch (b.op) {
        case BinaryOp::Add:
          return lhs->plus(*rhs);
        case BinaryOp::Sub:
          return lhs->minus(*rhs);
        case BinaryOp::Mul:
          if (lhs->is_constant()) return rhs->scaled(lhs->constant);
          if (rhs->is_constant()) return lhs->scaled(rhs->constant);
          return std::nullopt;
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Polyhedron
// ---------------------------------------------------------------------------

void Polyhedron::add_ge(AffineForm f) {
  f.normalize();
  constraints.push_back(std::move(f));
}

void Polyhedron::add_lower(const AffineForm& f, const AffineForm& lo) {
  add_ge(f.minus(lo));
}

void Polyhedron::add_upper(const AffineForm& f, const AffineForm& hi) {
  add_ge(hi.minus(f));
}

bool Polyhedron::contains(const IntEnv& env) const {
  for (const AffineForm& c : constraints) {
    auto value = c.evaluate(env);
    if (!value || *value < Rational(0)) return false;
  }
  return true;
}

std::string Polyhedron::to_string() const {
  std::string out;
  for (const AffineForm& c : constraints) {
    if (!out.empty()) out += "\n";
    out += c.to_string() + " >= 0";
  }
  return out;
}

// ---------------------------------------------------------------------------
// BoundTerm / LoopLevelBounds / LoopNestBounds
// ---------------------------------------------------------------------------

int64_t BoundTerm::numerator(const IntEnv& env) const {
  int64_t total = constant;
  for (const auto& [v, c] : coeffs) {
    auto it = env.find(v);
    if (it == env.end())
      throw std::runtime_error("BoundTerm: unbound variable '" + v + "'");
    total += c * it->second;
  }
  return total;
}

int64_t BoundTerm::eval_lower(const IntEnv& env) const {
  return ceil_div(numerator(env), divisor);
}

int64_t BoundTerm::eval_upper(const IntEnv& env) const {
  return floor_div(numerator(env), divisor);
}

std::string BoundTerm::to_string(bool upper) const {
  AffineForm f;
  f.constant = Rational(constant);
  for (const auto& [v, c] : coeffs) f.add_term(v, Rational(c));
  std::string body = f.to_string();
  if (divisor == 1) return body;
  return std::string(upper ? "floor" : "ceil") + "((" + body + ")/" +
         std::to_string(divisor) + ")";
}

int64_t LoopLevelBounds::lower(const IntEnv& env) const {
  int64_t best = std::numeric_limits<int64_t>::min();
  for (const BoundTerm& t : lowers) best = std::max(best, t.eval_lower(env));
  return best;
}

int64_t LoopLevelBounds::upper(const IntEnv& env) const {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (const BoundTerm& t : uppers) best = std::min(best, t.eval_upper(env));
  return best;
}

std::string LoopLevelBounds::to_string() const {
  std::string lo;
  for (const BoundTerm& t : lowers) {
    if (!lo.empty()) lo += ", ";
    lo += t.to_string(false);
  }
  std::string hi;
  for (const BoundTerm& t : uppers) {
    if (!hi.empty()) hi += ", ";
    hi += t.to_string(true);
  }
  if (lowers.size() > 1) lo = "max(" + lo + ")";
  if (uppers.size() > 1) hi = "min(" + hi + ")";
  return var + " = " + (lo.empty() ? "-inf" : lo) + " .. " +
         (hi.empty() ? "+inf" : hi);
}

const LoopLevelBounds* LoopNestBounds::find(std::string_view var) const {
  for (const LoopLevelBounds& level : levels)
    if (level.var == var) return &level;
  return nullptr;
}

std::string LoopNestBounds::to_string() const {
  std::string out;
  for (const LoopLevelBounds& level : levels) {
    if (!out.empty()) out += "\n";
    out += level.to_string();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fourier-Motzkin elimination
// ---------------------------------------------------------------------------

namespace {

/// Convert the rational inequality  var >= (-rest)/a  (lower, a > 0) or
/// var <= rest/b  (upper, b > 0) into an integer BoundTerm. `numer` is
/// the affine numerator; `denom` the positive rational denominator.
std::optional<BoundTerm> make_bound(const AffineForm& numer, Rational denom) {
  // Scale so the numerator has integer coefficients and the divisor is a
  // positive integer: multiply numerator and denominator by the lcm of
  // all coefficient denominators.
  int64_t lcm = denom.den();
  for (const auto& [v, c] : numer.coeffs)
    lcm = std::lcm(lcm, c.den());
  lcm = std::lcm(lcm, numer.constant.den());

  BoundTerm term;
  Rational scaled_div = denom * Rational(lcm);
  if (!scaled_div.is_integer() || scaled_div.as_integer() <= 0)
    return std::nullopt;
  term.divisor = scaled_div.as_integer();
  Rational c0 = numer.constant * Rational(lcm);
  if (!c0.is_integer()) return std::nullopt;
  term.constant = c0.as_integer();
  for (const auto& [v, c] : numer.coeffs) {
    Rational s = c * Rational(lcm);
    if (!s.is_integer()) return std::nullopt;
    if (s.as_integer() != 0) term.coeffs.emplace_back(v, s.as_integer());
  }

  // Reduce by the gcd of every coefficient and the divisor (ceil/floor
  // of a scaled fraction is unchanged when everything shares a factor).
  int64_t g = term.divisor;
  g = std::gcd(g, term.constant);
  for (const auto& [v, c] : term.coeffs) g = std::gcd(g, c);
  if (g > 1) {
    term.divisor /= g;
    term.constant /= g;
    for (auto& [v, c] : term.coeffs) c /= g;
  }
  std::sort(term.coeffs.begin(), term.coeffs.end());
  return term;
}

void dedupe_bounds(std::vector<BoundTerm>& terms, bool upper) {
  // Exact duplicates, then dominance between terms with identical
  // coefficient vectors and divisor: for lowers keep the larger
  // constant, for uppers the smaller.
  std::sort(terms.begin(), terms.end(),
            [](const BoundTerm& a, const BoundTerm& b) {
              return std::tie(a.coeffs, a.divisor, a.constant) <
                     std::tie(b.coeffs, b.divisor, b.constant);
            });
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::vector<BoundTerm> kept;
  for (BoundTerm& t : terms) {
    if (!kept.empty() && kept.back().coeffs == t.coeffs &&
        kept.back().divisor == t.divisor) {
      // Same linear part: one constant dominates.
      if (upper)
        kept.back().constant = std::min(kept.back().constant, t.constant);
      else
        kept.back().constant = std::max(kept.back().constant, t.constant);
    } else {
      kept.push_back(std::move(t));
    }
  }
  terms = std::move(kept);
}

}  // namespace

std::optional<LoopNestBounds> fourier_motzkin_bounds(
    const Polyhedron& p, const std::vector<std::string>& loop_order) {
  LoopNestBounds nest;
  nest.levels.resize(loop_order.size());
  for (size_t i = 0; i < loop_order.size(); ++i)
    nest.levels[i].var = loop_order[i];

  std::vector<AffineForm> work = p.constraints;

  // Eliminate innermost first; the constraints that mention the variable
  // become its bounds, the cross combinations survive to outer levels.
  for (size_t level = loop_order.size(); level-- > 0;) {
    const std::string& var = loop_order[level];
    std::vector<std::pair<AffineForm, Rational>> lowers;  // var >= numer/den
    std::vector<std::pair<AffineForm, Rational>> uppers;  // var <= numer/den
    std::vector<AffineForm> rest;

    for (AffineForm& c : work) {
      Rational a = c.coeff(var);
      if (a.is_zero()) {
        rest.push_back(std::move(c));
        continue;
      }
      AffineForm r = c;  // c = a*var + r with r's var-term removed
      r.coeffs.erase(var);
      if (a > Rational(0)) {
        // a*var + r >= 0  =>  var >= (-r)/a
        lowers.emplace_back(r.scaled(Rational(-1)), a);
      } else {
        // a*var + r >= 0  =>  var <= r/(-a)
        uppers.emplace_back(std::move(r), -a);
      }
    }

    for (const auto& [numer, den] : lowers) {
      auto term = make_bound(numer, den);
      if (!term) return std::nullopt;
      nest.levels[level].lowers.push_back(std::move(*term));
    }
    for (const auto& [numer, den] : uppers) {
      auto term = make_bound(numer, den);
      if (!term) return std::nullopt;
      nest.levels[level].uppers.push_back(std::move(*term));
    }
    dedupe_bounds(nest.levels[level].lowers, /*upper=*/false);
    dedupe_bounds(nest.levels[level].uppers, /*upper=*/true);

    // Cross combinations:  lo_num/lo_den <= var <= up_num/up_den  implies
    // up_den*lo_num <= lo_den*up_num, i.e. lo_den*up_num - up_den*lo_num >= 0.
    for (const auto& [lo_num, lo_den] : lowers) {
      for (const auto& [up_num, up_den] : uppers) {
        AffineForm combined =
            up_num.scaled(lo_den).minus(lo_num.scaled(up_den));
        combined.normalize();
        if (combined.is_constant()) {
          if (combined.constant < Rational(0)) return std::nullopt;  // empty
          continue;  // tautology
        }
        rest.push_back(std::move(combined));
      }
    }
    work = std::move(rest);
  }

  // Whatever is left mentions only symbolic parameters.
  for (const AffineForm& c : work) {
    if (c.is_constant()) {
      if (c.constant < Rational(0)) return std::nullopt;
      continue;
    }
    nest.preconditions.push_back(c.to_string() + " >= 0");
  }
  std::sort(nest.preconditions.begin(), nest.preconditions.end());
  nest.preconditions.erase(
      std::unique(nest.preconditions.begin(), nest.preconditions.end()),
      nest.preconditions.end());
  return nest;
}

// ---------------------------------------------------------------------------
// Transformed iteration domain
// ---------------------------------------------------------------------------

std::optional<Polyhedron> transformed_domain(
    const CheckedModule& module, const HyperplaneTransform& transform) {
  const DataItem* item = module.find_data(transform.array);
  if (item == nullptr || item->rank() != transform.dims()) return std::nullopt;

  Polyhedron poly;
  for (size_t j = 0; j < transform.dims(); ++j) {
    const Type* range = item->dims[j];
    if (range == nullptr || range->lo == nullptr || range->hi == nullptr)
      return std::nullopt;
    auto lo = affine_from_expr(*range->lo);
    auto hi = affine_from_expr(*range->hi);
    if (!lo || !hi) return std::nullopt;

    // old_j expressed over the new variables: sum_r T_inv[j][r] * new_r.
    AffineForm old_j;
    for (size_t r = 0; r < transform.dims(); ++r)
      old_j.add_term(transform.new_vars[r],
                     Rational(transform.T_inv.at(j, r)));

    poly.add_lower(old_j, *lo);
    poly.add_upper(old_j, *hi);
  }
  return poly;
}

// ---------------------------------------------------------------------------
// Scanning
// ---------------------------------------------------------------------------

namespace {

void scan_level(const LoopNestBounds& nest, size_t level, IntEnv& env,
                const std::function<void(const IntEnv&)>& body) {
  if (level == nest.levels.size()) {
    body(env);
    return;
  }
  const LoopLevelBounds& bounds = nest.levels[level];
  int64_t lo = bounds.lower(env);
  int64_t hi = bounds.upper(env);
  for (int64_t it = lo; it <= hi; ++it) {
    env[bounds.var] = it;
    scan_level(nest, level + 1, env, body);
  }
  env.erase(bounds.var);
}

}  // namespace

void scan_loop_nest(const LoopNestBounds& nest, const IntEnv& params,
                    const std::function<void(const IntEnv&)>& body) {
  IntEnv env = params;
  scan_level(nest, 0, env, body);
}

int64_t count_loop_nest_points(const LoopNestBounds& nest,
                               const IntEnv& params) {
  int64_t count = 0;
  scan_loop_nest(nest, params, [&count](const IntEnv&) { ++count; });
  return count;
}

// -- NestCursor -------------------------------------------------------------

NestCursor::NestCursor(const LoopNestBounds& nest, size_t first, IntEnv env)
    : nest_(&nest), first_(first), env_(std::move(env)) {
  const size_t levels = nest.levels.size();
  if (first_ > levels)
    throw std::runtime_error("NestCursor: first level beyond the nest");
  coords_.resize(levels - first_);
  his_.resize(levels - first_);
  // Pre-bind every cursor-level variable and cache its map node (map
  // nodes are address-stable). A level's bounds reference only outer
  // levels and symbolic parameters, so the dormant zero binding of an
  // inner variable can never affect a bound evaluation.
  slots_.reserve(levels - first_);
  for (size_t d = first_; d < levels; ++d)
    slots_.push_back(&env_[nest.levels[d].var]);
}

bool NestCursor::descend(size_t d) {
  while (true) {
    if (d == depth()) return true;
    const LoopLevelBounds& level = nest_->levels[first_ + d];
    int64_t lo = level.lower(env_);
    int64_t hi = level.upper(env_);
    if (lo <= hi) {
      coords_[d] = lo;
      his_[d] = hi;
      *slots_[d] = lo;
      ++d;
      continue;
    }
    // Empty inner range: carry at the deepest outer level that can
    // still move, then re-establish the lower corner below it.
    while (true) {
      if (d == 0) {
        exhausted_ = true;
        return false;
      }
      --d;
      if (coords_[d] < his_[d]) {
        *slots_[d] = ++coords_[d];
        ++d;
        break;
      }
    }
  }
}

bool NestCursor::next() {
  if (exhausted_) return false;
  if (!started_) {
    started_ = true;
    if (depth() == 0) return true;  // the single empty point
    return descend(0);
  }
  if (depth() == 0) {
    exhausted_ = true;
    return false;
  }
  size_t d = depth();
  while (true) {
    if (d == 0) {
      exhausted_ = true;
      return false;
    }
    --d;
    if (coords_[d] < his_[d]) {
      *slots_[d] = ++coords_[d];
      return descend(d + 1);
    }
  }
}

int64_t NestCursor::skip(int64_t count) {
  if (!started_ || exhausted_ || count <= 0 || depth() == 0) return 0;
  const size_t last = depth() - 1;
  int64_t& slot = *slots_[last];
  int64_t skipped = 0;
  while (skipped < count) {
    int64_t row_left = his_[last] - coords_[last];
    if (row_left >= count - skipped) {
      // The target lies in the current innermost row: one O(1) jump.
      coords_[last] += count - skipped;
      slot = coords_[last];
      return count;
    }
    // Consume the rest of the row, then carry onto the next row.
    skipped += row_left;
    coords_[last] = his_[last];
    slot = coords_[last];
    if (!next()) return skipped;
    ++skipped;
  }
  return skipped;
}

int64_t NestCursor::count(const LoopNestBounds& nest, size_t first,
                          IntEnv env) {
  const size_t levels = nest.levels.size();
  if (first >= levels) return 1;  // rank-0 subspace: one empty point

  // Odometer over the outer cursor levels, summing innermost extents
  // row by row -- O(points / innermost extent) instead of O(points).
  std::function<int64_t(size_t)> walk = [&](size_t level) -> int64_t {
    const LoopLevelBounds& bounds = nest.levels[level];
    int64_t lo = bounds.lower(env);
    int64_t hi = bounds.upper(env);
    if (level + 1 == levels) return hi < lo ? 0 : hi - lo + 1;
    int64_t total = 0;
    for (int64_t it = lo; it <= hi; ++it) {
      env[bounds.var] = it;
      total += walk(level + 1);
    }
    return total;
  };
  return walk(first);
}

}  // namespace ps
