#include "transform/time_function.hpp"

#include <algorithm>
#include <cstdlib>

namespace ps {

bool satisfies_dependences(
    const std::vector<int64_t>& coeffs,
    const std::vector<std::vector<int64_t>>& dependences) {
  for (const auto& d : dependences) {
    if (d.size() != coeffs.size()) return false;
    int64_t dot = 0;
    for (size_t i = 0; i < d.size(); ++i) dot += coeffs[i] * d[i];
    if (dot < 1) return false;
  }
  return true;
}

namespace {

struct Search {
  const std::vector<std::vector<int64_t>>& deps;
  int64_t bound;
  size_t n;
  std::vector<int64_t> current;
  std::vector<int64_t> partial_dot;  // per dependence
  std::vector<int64_t> tail_cap;     // max remaining |d| mass per dependence
  int64_t current_cost = 0;

  std::optional<std::vector<int64_t>> best;
  int64_t best_cost = 0;

  Search(const std::vector<std::vector<int64_t>>& d, int64_t b, size_t dims)
      : deps(d), bound(b), n(dims) {
    current.assign(n, 0);
    partial_dot.assign(deps.size(), 0);
  }

  /// tail_mass[i][k] = bound * sum_{j >= k} |deps[i][j]|: the largest
  /// amount the unassigned coefficients can still contribute.
  std::vector<std::vector<int64_t>> tail_mass;
  void precompute() {
    tail_mass.assign(deps.size(), std::vector<int64_t>(n + 1, 0));
    for (size_t i = 0; i < deps.size(); ++i)
      for (size_t k = n; k-- > 0;)
        tail_mass[i][k] =
            tail_mass[i][k + 1] + bound * std::abs(deps[i][k]);
  }

  bool better_than_best(int64_t cost) const {
    if (!best) return true;
    if (cost != best_cost) return cost < best_cost;
    return current < *best;  // lexicographic tie-break
  }

  void dfs(size_t k) {
    if (best && current_cost > best_cost) return;
    if (k == n) {
      for (int64_t dot : partial_dot)
        if (dot < 1) return;
      if (better_than_best(current_cost)) {
        best = current;
        best_cost = current_cost;
      }
      return;
    }
    // Feasibility prune: every dependence must still be able to reach 1.
    for (size_t i = 0; i < deps.size(); ++i)
      if (partial_dot[i] + tail_mass[i][k] < 1) return;

    // Try values by increasing magnitude so cheap solutions are found
    // early and the cost prune bites.
    for (int64_t mag = 0; mag <= bound; ++mag) {
      for (int sign : {+1, -1}) {
        if (mag == 0 && sign < 0) continue;
        int64_t v = sign * mag;
        current[k] = v;
        current_cost += mag;
        for (size_t i = 0; i < deps.size(); ++i)
          partial_dot[i] += v * deps[i][k];
        dfs(k + 1);
        for (size_t i = 0; i < deps.size(); ++i)
          partial_dot[i] -= v * deps[i][k];
        current_cost -= mag;
        current[k] = 0;
      }
    }
  }
};

}  // namespace

std::optional<std::vector<int64_t>> solve_time_function(
    const std::vector<std::vector<int64_t>>& dependences,
    const TimeFunctionOptions& options) {
  if (dependences.empty()) return std::nullopt;
  size_t n = dependences.front().size();
  for (const auto& d : dependences)
    if (d.size() != n) return std::nullopt;

  Search search(dependences, options.bound, n);
  search.precompute();
  search.dfs(0);
  return search.best;
}

}  // namespace ps
