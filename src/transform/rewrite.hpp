#pragma once

#include <optional>
#include <string>

#include "frontend/sema.hpp"
#include "support/diagnostics.hpp"
#include "transform/hyperplane.hpp"

namespace ps {

/// Rewrite `module` so that the recursively defined array named by the
/// transform is replaced by its hyperplane-skewed image A' (paper
/// section 4). The result is a new PS module AST that can be re-analysed
/// and scheduled with the unchanged pipeline; on the revised relaxation
/// the rescheduled module has an outer iterative loop over hyperplanes
/// and parallel inner loops -- the same shape as the paper's Figure 6.
///
/// Construction (the paper's "flag arrays which have undergone this
/// transformation" code-generation alternative, realised at the source
/// level):
///  * new subrange types for the transformed coordinates, bounding the
///    image of the original index box (e.g. K' = 2 .. 2*maxK + 2*M + 2);
///  * a local array A' over those subranges;
///  * one combined equation defining A'[K',I',J']: the defining equations
///    of A become guarded regions (guards are the original slice/range
///    constraints pulled back through T^-1); self-references in
///    constant-offset form rewrite to A'[x' + T.o] ("by simplification"
///    in the paper: A'[K'-1, I', J'-1] etc.); everything else has the old
///    index variables substituted with their T^-1 images (K = I', I = J',
///    J = K' - 2I' - J'); points of the bounding box outside the image of
///    the original domain take a neutral zero;
///  * every other equation's reference to A is redirected to A' by
///    applying T to its subscript expressions.
///
/// Returns nullopt (with diagnostics) for unsupported shapes (record
/// elements, anonymous element types).
[[nodiscard]] std::optional<ModuleAst> hyperplane_rewrite(
    const CheckedModule& module, const HyperplaneTransform& transform,
    DiagnosticEngine& diags, std::string new_module_suffix = "_h");

}  // namespace ps
