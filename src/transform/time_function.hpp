#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ps {

/// Solve the paper's dependence inequalities (section 4): find integer
/// coefficients a with a . d >= 1 for every dependence vector d (the
/// strict integer form of "time of A[x] comes after time of A[x - d]").
///
/// "Least" is interpreted as in the paper's example (a=2, b=c=1 for the
/// revised relaxation): minimise the sum of absolute coefficient values,
/// breaking ties by lexicographically smallest coefficient vector. The
/// search is a depth-first branch and bound over [-bound, bound]^n with a
/// feasibility prune per dependence; default bound 16 is far beyond
/// anything loop nests of depth <= 8 need.
///
/// Returns nullopt when the system is infeasible (e.g. a dependence and
/// its negation both present -- no linear schedule exists).
struct TimeFunctionOptions {
  int64_t bound = 16;
};

[[nodiscard]] std::optional<std::vector<int64_t>> solve_time_function(
    const std::vector<std::vector<int64_t>>& dependences,
    const TimeFunctionOptions& options = {});

/// True when `coeffs` satisfies every dependence inequality.
[[nodiscard]] bool satisfies_dependences(
    const std::vector<int64_t>& coeffs,
    const std::vector<std::vector<int64_t>>& dependences);

}  // namespace ps
