#include "transform/hyperplane.hpp"

#include <sstream>

namespace ps {

std::string HyperplaneTransform::describe() const {
  std::ostringstream os;
  for (size_t r = 0; r < dims(); ++r) {
    if (r) os << "; ";
    os << new_vars[r] << " = ";
    bool first = true;
    for (size_t c = 0; c < dims(); ++c) {
      int64_t v = T.at(r, c);
      if (v == 0) continue;
      if (!first)
        os << (v > 0 ? " + " : " - ");
      else if (v < 0)
        os << "-";
      int64_t mag = v < 0 ? -v : v;
      if (mag != 1) os << mag;
      os << old_vars[c];
      first = false;
    }
    if (first) os << "0";
  }
  return os.str();
}

std::optional<HyperplaneTransform> find_hyperplane(
    const DependenceSet& deps, const TimeFunctionOptions& options) {
  auto time = solve_time_function(deps.vectors, options);
  if (!time) return std::nullopt;

  auto completion = unimodular_completion(*time);
  if (!completion) return std::nullopt;
  auto inverse = completion->integer_inverse();
  if (!inverse) return std::nullopt;

  HyperplaneTransform out;
  out.array = deps.array;
  out.old_vars = deps.vars;
  for (const auto& v : deps.vars) out.new_vars.push_back(v + "'");
  out.time = std::move(*time);
  out.T = std::move(*completion);
  out.T_inv = std::move(*inverse);
  return out;
}

}  // namespace ps
