#include "transform/hyperplane.hpp"

#include <sstream>

namespace ps {

std::string HyperplaneTransform::describe() const {
  std::ostringstream os;
  for (size_t r = 0; r < dims(); ++r) {
    if (r) os << "; ";
    os << new_vars[r] << " = ";
    bool first = true;
    for (size_t c = 0; c < dims(); ++c) {
      int64_t v = T.at(r, c);
      if (v == 0) continue;
      if (!first)
        os << (v > 0 ? " + " : " - ");
      else if (v < 0)
        os << "-";
      int64_t mag = v < 0 ? -v : v;
      if (mag != 1) os << mag;
      os << old_vars[c];
      first = false;
    }
    if (first) os << "0";
  }
  return os.str();
}

std::optional<HyperplaneTransform> find_hyperplane(
    const DependenceSet& deps, const TimeFunctionOptions& options) {
  auto time = solve_time_function(deps.vectors, options);
  if (!time) return std::nullopt;

  auto completion = unimodular_completion(*time);
  if (!completion) return std::nullopt;
  auto inverse = completion->integer_inverse();
  if (!inverse) return std::nullopt;

  HyperplaneTransform out;
  out.array = deps.array;
  out.old_vars = deps.vars;
  for (const auto& v : deps.vars) out.new_vars.push_back(v + "'");
  out.time = std::move(*time);
  out.T = std::move(*completion);
  out.T_inv = std::move(*inverse);
  return out;
}

std::string HyperplaneCache::key_for(const DependenceSet& deps,
                                     const TimeFunctionOptions& options) {
  std::ostringstream os;
  os << deps.array << '|';
  for (const auto& v : deps.vars) os << v << ',';
  os << '|';
  for (const auto& vec : deps.vectors) {
    for (int64_t d : vec) os << d << ',';
    os << ';';
  }
  os << '|' << options.bound;
  return os.str();
}

std::optional<HyperplaneTransform> HyperplaneCache::find(
    const DependenceSet& deps, const TimeFunctionOptions& options) {
  std::string key = key_for(deps, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Solve outside the lock: concurrent workers may race on the same key,
  // but find_hyperplane is pure, so whichever insert wins stores the
  // identical value.
  std::optional<HyperplaneTransform> solved = find_hyperplane(deps, options);
  std::lock_guard<std::mutex> lock(mutex_);
  ++misses_;
  entries_.emplace(std::move(key), solved);
  return solved;
}

size_t HyperplaneCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t HyperplaneCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t HyperplaneCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace ps
