#include "transform/ast_builder.hpp"

namespace ps {

namespace {

bool is_int_lit(const Expr& e, int64_t* value = nullptr) {
  if (e.kind != ExprKind::IntLit) return false;
  if (value != nullptr) *value = static_cast<const IntLitExpr&>(e).value;
  return true;
}

}  // namespace

ExprPtr mk_int(int64_t value) { return std::make_unique<IntLitExpr>(value); }

ExprPtr mk_name(std::string name) {
  return std::make_unique<NameExpr>(std::move(name));
}

ExprPtr mk_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr mk_add(ExprPtr lhs, ExprPtr rhs) {
  int64_t a = 0;
  int64_t b = 0;
  if (is_int_lit(*lhs, &a) && is_int_lit(*rhs, &b)) return mk_int(a + b);
  if (is_int_lit(*rhs, &b) && b == 0) return lhs;
  if (is_int_lit(*lhs, &a) && a == 0) return rhs;
  // Fold `x + (-c)` into `x - c` for readability.
  if (is_int_lit(*rhs, &b) && b < 0)
    return mk_binary(BinaryOp::Sub, std::move(lhs), mk_int(-b));
  return mk_binary(BinaryOp::Add, std::move(lhs), std::move(rhs));
}

ExprPtr mk_sub(ExprPtr lhs, ExprPtr rhs) {
  int64_t a = 0;
  int64_t b = 0;
  if (is_int_lit(*lhs, &a) && is_int_lit(*rhs, &b)) return mk_int(a - b);
  if (is_int_lit(*rhs, &b) && b == 0) return lhs;
  if (is_int_lit(*rhs, &b) && b < 0)
    return mk_binary(BinaryOp::Add, std::move(lhs), mk_int(-b));
  return mk_binary(BinaryOp::Sub, std::move(lhs), std::move(rhs));
}

ExprPtr mk_mul(int64_t coef, ExprPtr operand) {
  int64_t v = 0;
  if (is_int_lit(*operand, &v)) return mk_int(coef * v);
  if (coef == 0) return mk_int(0);
  if (coef == 1) return operand;
  if (coef == -1)
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(operand));
  return mk_binary(BinaryOp::Mul, mk_int(coef), std::move(operand));
}

ExprPtr mk_if(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  return std::make_unique<IfExpr>(std::move(cond), std::move(then_e),
                                  std::move(else_e));
}

ExprPtr mk_and(ExprPtr lhs, ExprPtr rhs) {
  if (!lhs) return rhs;
  if (!rhs) return lhs;
  return mk_binary(BinaryOp::And, std::move(lhs), std::move(rhs));
}

ExprPtr mk_affine(const std::vector<AffineTerm>& terms, int64_t constant) {
  ExprPtr expr;
  for (const AffineTerm& term : terms) {
    if (term.coef == 0) continue;
    if (!expr) {
      expr = mk_mul(term.coef, mk_name(term.var));
    } else if (term.coef > 0) {
      expr = mk_add(std::move(expr), mk_mul(term.coef, mk_name(term.var)));
    } else {
      expr = mk_sub(std::move(expr), mk_mul(-term.coef, mk_name(term.var)));
    }
  }
  if (!expr) return mk_int(constant);
  if (constant > 0) return mk_add(std::move(expr), mk_int(constant));
  if (constant < 0) return mk_sub(std::move(expr), mk_int(-constant));
  return expr;
}

ExprPtr substitute(
    const Expr& e,
    const std::vector<std::pair<std::string, const Expr*>>& subst) {
  switch (e.kind) {
    case ExprKind::Name: {
      const auto& name = static_cast<const NameExpr&>(e).name;
      for (const auto& [var, repl] : subst)
        if (var == name) return repl->clone();
      return e.clone();
    }
    case ExprKind::Index: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      std::vector<ExprPtr> subs;
      subs.reserve(ix.subs.size());
      for (const auto& s : ix.subs) subs.push_back(substitute(*s, subst));
      // Base names are data items, never index variables.
      return std::make_unique<IndexExpr>(ix.base->clone(), std::move(subs),
                                         e.loc);
    }
    case ExprKind::Field: {
      const auto& f = static_cast<const FieldExpr&>(e);
      return std::make_unique<FieldExpr>(substitute(*f.base, subst), f.field,
                                         e.loc);
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      return std::make_unique<UnaryExpr>(u.op, substitute(*u.operand, subst),
                                         e.loc);
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return std::make_unique<BinaryExpr>(b.op, substitute(*b.lhs, subst),
                                          substitute(*b.rhs, subst), e.loc);
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      return std::make_unique<IfExpr>(substitute(*i.cond, subst),
                                      substitute(*i.then_expr, subst),
                                      substitute(*i.else_expr, subst), e.loc);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      std::vector<ExprPtr> args;
      args.reserve(c.args.size());
      for (const auto& a : c.args) args.push_back(substitute(*a, subst));
      return std::make_unique<CallExpr>(c.callee, std::move(args), e.loc);
    }
    default:
      return e.clone();
  }
}

}  // namespace ps
