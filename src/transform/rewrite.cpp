#include "transform/rewrite.hpp"

#include <algorithm>
#include <map>

#include "transform/ast_builder.hpp"

namespace ps {

namespace {

/// Build the parse-level type expression for a resolved scalar type.
TypeExprPtr scalar_type_expr(const Type& t, DiagnosticEngine& diags,
                             SourceLoc loc) {
  auto node = std::make_unique<TypeExprNode>();
  node->loc = loc;
  switch (t.kind) {
    case TypeKind::Int:
      node->kind = TypeExprKind::Int;
      return node;
    case TypeKind::Real:
      node->kind = TypeExprKind::Real;
      return node;
    case TypeKind::Bool:
      node->kind = TypeExprKind::Bool;
      return node;
    default:
      if (!t.name.empty()) {
        node->kind = TypeExprKind::Named;
        node->name = t.name;
        return node;
      }
      diags.error(loc, "hyperplane rewrite: unsupported element type '" +
                           t.display() + "'");
      return nullptr;
  }
}

VarDeclAst clone_var_decl(const VarDeclAst& d) {
  VarDeclAst out;
  out.names = d.names;
  out.type = d.type->clone();
  out.loc = d.loc;
  return out;
}

TypeDeclAst clone_type_decl(const TypeDeclAst& d) {
  TypeDeclAst out;
  out.names = d.names;
  out.type = d.type->clone();
  out.loc = d.loc;
  return out;
}

class Rewriter {
 public:
  Rewriter(const CheckedModule& module, const HyperplaneTransform& transform,
           DiagnosticEngine& diags)
      : module_(module), h_(transform), diags_(diags) {}

  std::optional<ModuleAst> run(const std::string& suffix) {
    item_ = module_.find_data(h_.array);
    if (item_ == nullptr || item_->rank() != h_.dims()) {
      diags_.error({}, "hyperplane rewrite: transform does not match '" +
                           h_.array + "'");
      return std::nullopt;
    }
    n_ = h_.dims();
    new_array_ = h_.array + "'";

    // Old coordinates expressed in the new ones: old_j = sum_r
    // T_inv[j][r] * new_r (K = I', I = J', J = K' - 2I' - J').
    for (size_t j = 0; j < n_; ++j) {
      std::vector<AffineTerm> terms;
      for (size_t r = 0; r < n_; ++r)
        terms.push_back(AffineTerm{h_.T_inv.at(j, r), h_.new_vars[r]});
      inverse_.push_back(mk_affine(terms, 0));
    }
    for (size_t j = 0; j < n_; ++j)
      subst_.emplace_back(h_.old_vars[j], inverse_[j].get());

    ModuleAst out;
    out.name = module_.ast.name + suffix;
    out.loc = module_.ast.loc;
    for (const auto& p : module_.ast.params)
      out.params.push_back(clone_var_decl(p));
    for (const auto& r : module_.ast.results)
      out.results.push_back(clone_var_decl(r));
    for (const auto& t : module_.ast.type_decls)
      out.type_decls.push_back(clone_type_decl(t));

    // New subrange types bounding the image of the original index box.
    for (size_t r = 0; r < n_; ++r) {
      if (module_.find_type(h_.new_vars[r]) != nullptr ||
          module_.find_data(h_.new_vars[r]) != nullptr) {
        diags_.error({}, "hyperplane rewrite: name '" + h_.new_vars[r] +
                             "' already exists in the module");
        return std::nullopt;
      }
      TypeDeclAst decl;
      decl.names = {h_.new_vars[r]};
      decl.type = std::make_unique<TypeExprNode>();
      decl.type->kind = TypeExprKind::Subrange;
      decl.type->lo = image_bound(r, /*upper=*/false);
      decl.type->hi = image_bound(r, /*upper=*/true);
      out.type_decls.push_back(std::move(decl));
    }

    // Locals: drop the transformed array, add A'.
    for (const auto& l : module_.ast.locals) {
      VarDeclAst copy = clone_var_decl(l);
      copy.names.erase(
          std::remove(copy.names.begin(), copy.names.end(), h_.array),
          copy.names.end());
      if (!copy.names.empty()) out.locals.push_back(std::move(copy));
    }
    {
      VarDeclAst decl;
      decl.names = {new_array_};
      auto arr = std::make_unique<TypeExprNode>();
      arr->kind = TypeExprKind::Array;
      for (size_t r = 0; r < n_; ++r) {
        auto dim = std::make_unique<TypeExprNode>();
        dim->kind = TypeExprKind::Named;
        dim->name = h_.new_vars[r];
        arr->dims.push_back(std::move(dim));
      }
      arr->elem = scalar_type_expr(*item_->elem, diags_, item_->loc);
      if (!arr->elem) return std::nullopt;
      decl.type = std::move(arr);
      out.locals.push_back(std::move(decl));
    }

    // Equations.
    ExprPtr combined = zero_of(*item_->elem);
    if (!combined) return std::nullopt;
    bool have_region = false;
    // Regions are tried in equation order; build the if-chain from the
    // last region outwards so the first equation is tested first.
    for (size_t i = module_.equations.size(); i-- > 0;) {
      const CheckedEquation& eq = module_.equations[i];
      if (module_.data[eq.target].name != h_.array) continue;
      // Substitution is by variable name, so every defining equation must
      // use the transform's index variables for the dimensions it loops.
      for (const LoopDim& dim : eq.loop_dims) {
        if (dim.lhs_dim < n_ && dim.var != h_.old_vars[dim.lhs_dim]) {
          diags_.error(eq.loc, "hyperplane rewrite: " + eq.display_name +
                                   " names dimension " +
                                   std::to_string(dim.lhs_dim + 1) + " '" +
                                   dim.var + "' but the transform uses '" +
                                   h_.old_vars[dim.lhs_dim] + "'");
          return std::nullopt;
        }
      }
      ref_info_.clear();
      for (const ArrayRefInfo& ref : eq.array_refs)
        ref_info_.emplace(static_cast<const Expr*>(ref.expr), &ref);
      ExprPtr body = rewrite(*eq.rhs, /*in_defining=*/true, &eq);
      if (!body) return std::nullopt;
      combined = mk_if(region_guard(eq), std::move(body), std::move(combined));
      have_region = true;
    }
    if (!have_region) {
      diags_.error({}, "hyperplane rewrite: '" + h_.array +
                           "' has no defining equations");
      return std::nullopt;
    }

    for (const CheckedEquation& eq : module_.equations) {
      if (module_.data[eq.target].name == h_.array) continue;
      ref_info_.clear();
      for (const ArrayRefInfo& ref : eq.array_refs)
        ref_info_.emplace(static_cast<const Expr*>(ref.expr), &ref);
      EquationAst ast_eq;
      ast_eq.loc = eq.loc;
      ast_eq.lhs_name = module_.data[eq.target].name;
      for (const LhsSubscript& sub : eq.lhs_subs) {
        if (sub.is_index_var)
          ast_eq.lhs_subs.push_back(mk_name(sub.var));
        else
          ast_eq.lhs_subs.push_back(sub.fixed->clone());
      }
      ast_eq.rhs = rewrite(*eq.rhs, /*in_defining=*/false, &eq);
      if (!ast_eq.rhs) return std::nullopt;
      out.equations.push_back(std::move(ast_eq));
    }

    {
      EquationAst ast_eq;
      ast_eq.lhs_name = new_array_;
      for (size_t r = 0; r < n_; ++r)
        ast_eq.lhs_subs.push_back(mk_name(h_.new_vars[r]));
      ast_eq.rhs = std::move(combined);
      out.equations.push_back(std::move(ast_eq));
    }

    return out;
  }

 private:
  /// Lower/upper bound expression of image coordinate r over the box
  /// spanned by the array's dimension subranges: pick each dimension's lo
  /// or hi according to the sign of T[r][c].
  ExprPtr image_bound(size_t r, bool upper) {
    ExprPtr sum;
    for (size_t c = 0; c < n_; ++c) {
      int64_t coef = h_.T.at(r, c);
      if (coef == 0) continue;
      const Type* dim = item_->dims[c];
      bool take_hi = (coef > 0) == upper;
      ExprPtr bound = (take_hi ? dim->hi : dim->lo)->clone();
      ExprPtr term = mk_mul(coef, std::move(bound));
      sum = sum ? mk_add(std::move(sum), std::move(term)) : std::move(term);
    }
    return sum ? std::move(sum) : mk_int(0);
  }

  ExprPtr zero_of(const Type& elem) {
    switch (elem.kind) {
      case TypeKind::Real:
        return std::make_unique<RealLitExpr>(0.0);
      case TypeKind::Int:
      case TypeKind::Subrange:
        return mk_int(0);
      case TypeKind::Bool:
        return std::make_unique<BoolLitExpr>(false);
      default:
        diags_.error(item_->loc,
                     "hyperplane rewrite: no neutral element for type '" +
                         elem.display() + "'");
        return nullptr;
    }
  }

  /// The region of the bounding box covered by one defining equation:
  /// fixed slices become equalities, looped dimensions become range
  /// checks, all over the pulled-back old coordinates.
  ExprPtr region_guard(const CheckedEquation& eq) {
    ExprPtr guard;
    for (size_t p = 0; p < eq.lhs_subs.size(); ++p) {
      const LhsSubscript& sub = eq.lhs_subs[p];
      if (sub.is_index_var) {
        const LoopDim* dim = nullptr;
        for (const LoopDim& d : eq.loop_dims)
          if (d.lhs_dim == p) dim = &d;
        if (dim == nullptr) continue;
        guard = mk_and(std::move(guard),
                       mk_binary(BinaryOp::Ge, inverse_[p]->clone(),
                                 dim->range->lo->clone()));
        guard = mk_and(std::move(guard),
                       mk_binary(BinaryOp::Le, inverse_[p]->clone(),
                                 dim->range->hi->clone()));
      } else {
        guard = mk_and(std::move(guard),
                       mk_binary(BinaryOp::Eq, inverse_[p]->clone(),
                                 sub.fixed->clone()));
      }
    }
    if (!guard) guard = std::make_unique<BoolLitExpr>(true);
    return guard;
  }

  /// Rewrite an (elaborated) expression. Inside a defining equation the
  /// old index variables are substituted with their T^-1 images; in every
  /// equation, references to the transformed array are redirected to A'.
  ExprPtr rewrite(const Expr& e, bool in_defining,
                  const CheckedEquation* eq) {
    switch (e.kind) {
      case ExprKind::Name: {
        const auto& name = static_cast<const NameExpr&>(e).name;
        if (in_defining) {
          for (size_t j = 0; j < n_; ++j)
            if (h_.old_vars[j] == name) return inverse_[j]->clone();
        }
        return e.clone();
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        bool is_target =
            ix.base->kind == ExprKind::Name &&
            static_cast<const NameExpr&>(*ix.base).name == h_.array;
        if (is_target) return rewrite_target_ref(ix, in_defining, eq);
        std::vector<ExprPtr> subs;
        for (const auto& s : ix.subs) {
          ExprPtr rs = rewrite(*s, in_defining, eq);
          if (!rs) return nullptr;
          subs.push_back(std::move(rs));
        }
        return std::make_unique<IndexExpr>(ix.base->clone(), std::move(subs),
                                           e.loc);
      }
      case ExprKind::Field: {
        const auto& f = static_cast<const FieldExpr&>(e);
        ExprPtr base = rewrite(*f.base, in_defining, eq);
        if (!base) return nullptr;
        return std::make_unique<FieldExpr>(std::move(base), f.field, e.loc);
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        ExprPtr operand = rewrite(*u.operand, in_defining, eq);
        if (!operand) return nullptr;
        return std::make_unique<UnaryExpr>(u.op, std::move(operand), e.loc);
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        ExprPtr lhs = rewrite(*b.lhs, in_defining, eq);
        ExprPtr rhs = rewrite(*b.rhs, in_defining, eq);
        if (!lhs || !rhs) return nullptr;
        return std::make_unique<BinaryExpr>(b.op, std::move(lhs),
                                            std::move(rhs), e.loc);
      }
      case ExprKind::If: {
        const auto& i = static_cast<const IfExpr&>(e);
        ExprPtr c = rewrite(*i.cond, in_defining, eq);
        ExprPtr t = rewrite(*i.then_expr, in_defining, eq);
        ExprPtr el = rewrite(*i.else_expr, in_defining, eq);
        if (!c || !t || !el) return nullptr;
        return std::make_unique<IfExpr>(std::move(c), std::move(t),
                                        std::move(el), e.loc);
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const CallExpr&>(e);
        std::vector<ExprPtr> args;
        for (const auto& a : call.args) {
          ExprPtr ra = rewrite(*a, in_defining, eq);
          if (!ra) return nullptr;
          args.push_back(std::move(ra));
        }
        return std::make_unique<CallExpr>(call.callee, std::move(args), e.loc);
      }
      default:
        return e.clone();
    }
  }

  /// Redirect a reference A[e_0..e_{n-1}] to A'. Constant-offset
  /// self-references inside a defining equation rewrite directly to
  /// A'[x' + T.o] (the paper's simplified form); anything else applies T
  /// to the (rewritten) subscript expressions.
  ExprPtr rewrite_target_ref(const IndexExpr& ix, bool in_defining,
                             const CheckedEquation* eq) {
    if (in_defining && eq != nullptr) {
      auto it = ref_info_.find(static_cast<const Expr*>(&ix));
      if (it != ref_info_.end() && offset_form(*it->second, *eq)) {
        std::vector<int64_t> o(n_);
        for (size_t p = 0; p < n_; ++p) o[p] = it->second->subs[p].offset;
        std::vector<int64_t> to = h_.T.apply(o);
        std::vector<ExprPtr> subs;
        for (size_t r = 0; r < n_; ++r)
          subs.push_back(
              mk_affine({AffineTerm{1, h_.new_vars[r]}}, to[r]));
        return std::make_unique<IndexExpr>(mk_name(new_array_),
                                           std::move(subs), ix.loc);
      }
    }
    // General form: new subscript r = sum_c T[r][c] * e_c.
    std::vector<ExprPtr> rewritten;
    for (const auto& s : ix.subs) {
      ExprPtr rs = rewrite(*s, in_defining, eq);
      if (!rs) return nullptr;
      rewritten.push_back(std::move(rs));
    }
    std::vector<ExprPtr> subs;
    for (size_t r = 0; r < n_; ++r) {
      ExprPtr sum;
      for (size_t c = 0; c < n_; ++c) {
        int64_t coef = h_.T.at(r, c);
        if (coef == 0) continue;
        ExprPtr term = mk_mul(coef, rewritten[c]->clone());
        sum = sum ? mk_add(std::move(sum), std::move(term)) : std::move(term);
      }
      subs.push_back(sum ? std::move(sum) : mk_int(0));
    }
    return std::make_unique<IndexExpr>(mk_name(new_array_), std::move(subs),
                                       ix.loc);
  }

  /// Is this self-reference in pure constant-offset form, with each
  /// subscript using the loop variable of its own dimension?
  bool offset_form(const ArrayRefInfo& ref, const CheckedEquation& eq) const {
    std::vector<std::string> dim_var(n_);
    for (const LoopDim& dim : eq.loop_dims)
      if (dim.lhs_dim < n_) dim_var[dim.lhs_dim] = dim.var;
    for (size_t p = 0; p < n_; ++p) {
      const SubscriptInfo& sub = ref.subs[p];
      if (sub.kind != SubscriptInfo::Kind::IndexVar) return false;
      if (dim_var[p].empty() || sub.var != dim_var[p]) return false;
    }
    return true;
  }

  const CheckedModule& module_;
  const HyperplaneTransform& h_;
  DiagnosticEngine& diags_;
  const DataItem* item_ = nullptr;
  size_t n_ = 0;
  std::string new_array_;
  std::vector<ExprPtr> inverse_;
  std::vector<std::pair<std::string, const Expr*>> subst_;
  std::map<const Expr*, const ArrayRefInfo*> ref_info_;
};

}  // namespace

std::optional<ModuleAst> hyperplane_rewrite(const CheckedModule& module,
                                            const HyperplaneTransform& transform,
                                            DiagnosticEngine& diags,
                                            std::string new_module_suffix) {
  Rewriter rewriter(module, transform, diags);
  return rewriter.run(new_module_suffix);
}

}  // namespace ps
