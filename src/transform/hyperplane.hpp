#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/matrix.hpp"
#include "transform/dependence.hpp"
#include "transform/time_function.hpp"

namespace ps {

/// A complete hyperplane coordinate change (paper section 4): the time
/// function as the first row of a unimodular matrix T, together with its
/// exact integer inverse. For the revised relaxation,
///   T = [[2,1,1],[1,0,0],[0,1,0]]  (K' = 2K+I+J, I' = K, J' = I)
///   T_inv rows give K = I', I = J', J = K' - 2I' - J'.
struct HyperplaneTransform {
  std::string array;
  std::vector<std::string> old_vars;  // (K, I, J)
  std::vector<std::string> new_vars;  // (K', I', J')
  std::vector<int64_t> time;          // first row of T
  IntMatrix T;
  IntMatrix T_inv;

  [[nodiscard]] size_t dims() const { return old_vars.size(); }

  /// Human-readable description: "K' = 2K + I + J; I' = K; J' = I".
  [[nodiscard]] std::string describe() const;
};

/// Derive the transform for a dependence set: solve the dependence
/// inequalities for the least time function, complete it to a unimodular
/// matrix, and invert. New variable names are the old names primed.
/// Returns nullopt when no linear schedule exists.
[[nodiscard]] std::optional<HyperplaneTransform> find_hyperplane(
    const DependenceSet& deps, const TimeFunctionOptions& options = {});

}  // namespace ps
