#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/matrix.hpp"
#include "transform/dependence.hpp"
#include "transform/time_function.hpp"

namespace ps {

/// A complete hyperplane coordinate change (paper section 4): the time
/// function as the first row of a unimodular matrix T, together with its
/// exact integer inverse. For the revised relaxation,
///   T = [[2,1,1],[1,0,0],[0,1,0]]  (K' = 2K+I+J, I' = K, J' = I)
///   T_inv rows give K = I', I = J', J = K' - 2I' - J'.
struct HyperplaneTransform {
  std::string array;
  std::vector<std::string> old_vars;  // (K, I, J)
  std::vector<std::string> new_vars;  // (K', I', J')
  std::vector<int64_t> time;          // first row of T
  IntMatrix T;
  IntMatrix T_inv;

  [[nodiscard]] size_t dims() const { return old_vars.size(); }

  /// Human-readable description: "K' = 2K + I + J; I' = K; J' = I".
  [[nodiscard]] std::string describe() const;
};

/// Derive the transform for a dependence set: solve the dependence
/// inequalities for the least time function, complete it to a unimodular
/// matrix, and invert. New variable names are the old names primed.
/// Returns nullopt when no linear schedule exists.
[[nodiscard]] std::optional<HyperplaneTransform> find_hyperplane(
    const DependenceSet& deps, const TimeFunctionOptions& options = {});

/// A thread-safe memo table over find_hyperplane, shared by every
/// worker of a batch compilation. find_hyperplane is a pure function of
/// the dependence set and the solver options -- its branch-and-bound
/// search is also by far the most expensive part of the Hyperplane
/// pass -- so units whose recurrences induce the same dependence
/// vectors (every instance of the paper corpus, every synthetic stress
/// module sharing a stencil) pay for the search once. Negative results
/// (no linear schedule) are cached too.
///
/// Determinism: the cached value is exactly what find_hyperplane
/// returns for the key, so a cache hit is byte-for-byte equivalent to
/// solving again.
class HyperplaneCache {
 public:
  /// find_hyperplane(deps, options), memoised.
  [[nodiscard]] std::optional<HyperplaneTransform> find(
      const DependenceSet& deps, const TimeFunctionOptions& options);

  [[nodiscard]] size_t hits() const;
  [[nodiscard]] size_t misses() const;
  [[nodiscard]] size_t size() const;

 private:
  /// Canonical key: vars, vectors and the solver bound.
  static std::string key_for(const DependenceSet& deps,
                             const TimeFunctionOptions& options);

  mutable std::mutex mutex_;
  std::map<std::string, std::optional<HyperplaneTransform>> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace ps
