#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace ps {

// Small expression-building helpers used by the hyperplane rewrite to
// construct PS surface syntax. All builders fold integer constants so the
// generated equations read like the paper's ("A'[K' - 2, I' - 1, J']",
// not "A'[K' + -2 + 0, ...]").

[[nodiscard]] ExprPtr mk_int(int64_t value);
[[nodiscard]] ExprPtr mk_name(std::string name);
[[nodiscard]] ExprPtr mk_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr mk_add(ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr mk_sub(ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr mk_mul(int64_t coef, ExprPtr operand);
[[nodiscard]] ExprPtr mk_if(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);

/// Conjunction; nullptr operands are treated as `true` and dropped.
[[nodiscard]] ExprPtr mk_and(ExprPtr lhs, ExprPtr rhs);

/// One linear term of an affine expression.
struct AffineTerm {
  int64_t coef = 0;
  std::string var;
};

/// Build `sum(coef_i * var_i) + constant` with pretty folding:
/// coefficient 1 emits the bare variable, -1 emits a subtraction, zero
/// terms vanish; an all-zero expression is the literal constant.
[[nodiscard]] ExprPtr mk_affine(const std::vector<AffineTerm>& terms,
                                int64_t constant);

/// Deep-copy `e`, replacing every NameExpr whose name appears in `subst`
/// with a clone of the mapped expression.
[[nodiscard]] ExprPtr substitute(const Expr& e,
                                 const std::vector<std::pair<std::string,
                                                             const Expr*>>&
                                     subst);

}  // namespace ps
