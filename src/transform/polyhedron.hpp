#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/const_eval.hpp"
#include "frontend/sema.hpp"
#include "support/rational.hpp"
#include "transform/hyperplane.hpp"

namespace ps {

/// A rational affine form  constant + sum coeffs[v] * v  over named
/// variables (loop indices and symbolic module parameters such as M or
/// maxK). The exact-bounds machinery below works with these forms; all
/// arithmetic is exact.
struct AffineForm {
  Rational constant;
  std::map<std::string, Rational> coeffs;

  [[nodiscard]] Rational coeff(std::string_view var) const;
  void add_term(const std::string& var, Rational c);

  [[nodiscard]] AffineForm plus(const AffineForm& other) const;
  [[nodiscard]] AffineForm minus(const AffineForm& other) const;
  [[nodiscard]] AffineForm scaled(Rational factor) const;

  /// Drop zero coefficients.
  void normalize();

  [[nodiscard]] bool is_constant() const;

  /// Exact evaluation over an integer environment; nullopt when a
  /// variable is unbound.
  [[nodiscard]] std::optional<Rational> evaluate(const IntEnv& env) const;

  /// Human-readable rendering, e.g. "2*K' - J' + 1".
  [[nodiscard]] std::string to_string() const;
};

/// Translate a PS bound expression (over integer parameters, e.g.
/// "2*maxK + 2*M + 2") into an affine form. Handles literals, names,
/// unary minus, +, -, and multiplication by a constant side. Returns
/// nullopt for non-affine expressions.
[[nodiscard]] std::optional<AffineForm> affine_from_expr(const Expr& e);

/// A conjunction of affine inequalities, each stored as  form >= 0.
struct Polyhedron {
  std::vector<AffineForm> constraints;

  /// Add  f >= 0.
  void add_ge(AffineForm f);
  /// Add  lo <= f  (i.e. f - lo >= 0).
  void add_lower(const AffineForm& f, const AffineForm& lo);
  /// Add  f <= hi  (i.e. hi - f >= 0).
  void add_upper(const AffineForm& f, const AffineForm& hi);

  /// True when `env` (binding every variable) satisfies all constraints.
  [[nodiscard]] bool contains(const IntEnv& env) const;

  [[nodiscard]] std::string to_string() const;
};

/// One integer loop bound produced by Fourier-Motzkin elimination:
///   var >= ceil( (constant + sum coeffs*outer) / divisor )   (lower)
///   var <= floor( (constant + sum coeffs*outer) / divisor )  (upper)
/// `divisor` is always positive; `coeffs` reference outer loop variables
/// and symbolic parameters only.
struct BoundTerm {
  int64_t divisor = 1;
  int64_t constant = 0;
  std::vector<std::pair<std::string, int64_t>> coeffs;

  [[nodiscard]] int64_t numerator(const IntEnv& env) const;
  [[nodiscard]] int64_t eval_lower(const IntEnv& env) const;  // ceil div
  [[nodiscard]] int64_t eval_upper(const IntEnv& env) const;  // floor div

  /// Rendering for reports: "ceil((M - K' + 2)/2)" / plain affine text
  /// when divisor == 1.
  [[nodiscard]] std::string to_string(bool upper) const;

  friend bool operator==(const BoundTerm&, const BoundTerm&) = default;
};

/// Exact bounds of one loop level: the max over `lowers` and min over
/// `uppers`. An empty iteration space at runtime simply yields
/// lower() > upper().
struct LoopLevelBounds {
  std::string var;
  std::vector<BoundTerm> lowers;
  std::vector<BoundTerm> uppers;

  [[nodiscard]] int64_t lower(const IntEnv& env) const;
  [[nodiscard]] int64_t upper(const IntEnv& env) const;

  [[nodiscard]] std::string to_string() const;
};

/// The exact (in general non-rectangular) loop nest scanning the integer
/// points of a polyhedron in a fixed variable order, outermost first --
/// Lamport's method [10], which the paper cites for exactly this code-
/// generation step. Level k's bounds reference symbolic parameters and
/// the indices of levels 0..k-1 only.
struct LoopNestBounds {
  std::vector<LoopLevelBounds> levels;
  /// Constraints mentioning only symbolic parameters (preconditions of a
  /// non-empty space); recorded for reports, not enforced per iteration.
  std::vector<std::string> preconditions;

  [[nodiscard]] const LoopLevelBounds* find(std::string_view var) const;
  [[nodiscard]] std::string to_string() const;
};

/// Project `p` onto nested loop bounds for `loop_order` (outermost
/// first) by exact Fourier-Motzkin elimination, innermost variable
/// first. Any other variable appearing in the constraints is treated as
/// a symbolic parameter available at every level.
///
/// Scanning the resulting nest visits *exactly* the integer points of
/// `p`: constraints over a prefix of the order survive elimination and
/// are enforced at the deepest prefix level, so no in-body guard is
/// needed. (Projection can over-approximate a level's range only in
/// directions where some inner range becomes empty -- those outer values
/// execute zero iterations, preserving exactness.)
///
/// Returns nullopt when a constraint is detected infeasible at constant
/// level (the polyhedron is empty for every parameter value).
[[nodiscard]] std::optional<LoopNestBounds> fourier_motzkin_bounds(
    const Polyhedron& p, const std::vector<std::string>& loop_order);

/// The image of the transformed array's original index box under the
/// hyperplane coordinate change: constraints  lo_j <= (T^-1 x')_j <= hi_j
/// over the new variables, with the original subrange bounds kept
/// symbolic in the module parameters. Returns nullopt when a bound
/// expression is not affine in the parameters.
[[nodiscard]] std::optional<Polyhedron> transformed_domain(
    const CheckedModule& module, const HyperplaneTransform& transform);

/// Enumerate every integer point of `nest` given parameter values,
/// invoking `body` with an environment binding all loop variables (and
/// containing `params`). Iterates in lexicographic loop order. Used by
/// the property tests and the windowed wavefront executor.
void scan_loop_nest(const LoopNestBounds& nest, const IntEnv& params,
                    const std::function<void(const IntEnv&)>& body);

/// A lazy lexicographic cursor over the integer points of the nest
/// levels [first, levels.size()), with every outer level (and every
/// symbolic parameter) already bound in the environment. State is
/// O(depth): no point vector is ever materialised, which is what lets
/// the streaming wavefront executor scan one hyperplane at a time in
/// O(window) memory and hand disjoint point ranges to worker shards.
///
/// Usage: call next() to step onto the first point and after that onto
/// each successive point; coords() is valid while the last next()
/// returned true. skip(k) advances past up to k additional points
/// without observing them (whole innermost rows are skipped in O(1)
/// per row), which is how parallel workers seek to their stripe.
class NestCursor {
 public:
  /// `nest` must outlive the cursor. A depth of zero (first ==
  /// levels.size()) yields exactly one empty point.
  NestCursor(const LoopNestBounds& nest, size_t first, IntEnv env);

  // Movable but not copyable: the cursor caches pointers into its own
  // environment's map nodes (stable under move, not under copy).
  NestCursor(NestCursor&&) = default;
  NestCursor& operator=(NestCursor&&) = default;
  NestCursor(const NestCursor&) = delete;
  NestCursor& operator=(const NestCursor&) = delete;

  /// Advance to the next point; false once the space is exhausted.
  bool next();

  /// Coordinates of the current point: one value per level in
  /// [first, levels.size()), outermost first.
  [[nodiscard]] const std::vector<int64_t>& coords() const { return coords_; }

  /// Advance past up to `count` further points (the current point stays
  /// consumed); returns how many were actually skipped. After skip(k)
  /// the cursor is positioned k points after where it stood, and
  /// coords() reflects the new position when the full count was
  /// available.
  int64_t skip(int64_t count);

  /// Number of points of the subspace, summing innermost extents row by
  /// row instead of enumerating individual points.
  [[nodiscard]] static int64_t count(const LoopNestBounds& nest, size_t first,
                                     IntEnv env);

 private:
  [[nodiscard]] size_t depth() const { return coords_.size(); }
  /// Establish the lower-bound corner of levels [d, depth); on an empty
  /// inner range, carry outward. False when exhausted.
  bool descend(size_t d);

  const LoopNestBounds* nest_;
  size_t first_;
  IntEnv env_;
  std::vector<int64_t> coords_;  // current value per cursor level
  std::vector<int64_t> his_;     // cached upper bound per cursor level
  /// The env_ map node of each cursor level's variable, bound once at
  /// construction: advancing the innermost level writes one int
  /// through this instead of a string-keyed map lookup per point.
  std::vector<int64_t*> slots_;
  bool started_ = false;
  bool exhausted_ = false;
};

/// Number of integer points (scan_loop_nest with a counter).
[[nodiscard]] int64_t count_loop_nest_points(const LoopNestBounds& nest,
                                             const IntEnv& params);

}  // namespace ps
