#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/const_eval.hpp"
#include "frontend/sema.hpp"
#include "support/rational.hpp"
#include "transform/hyperplane.hpp"

namespace ps {

/// A rational affine form  constant + sum coeffs[v] * v  over named
/// variables (loop indices and symbolic module parameters such as M or
/// maxK). The exact-bounds machinery below works with these forms; all
/// arithmetic is exact.
struct AffineForm {
  Rational constant;
  std::map<std::string, Rational> coeffs;

  [[nodiscard]] Rational coeff(std::string_view var) const;
  void add_term(const std::string& var, Rational c);

  [[nodiscard]] AffineForm plus(const AffineForm& other) const;
  [[nodiscard]] AffineForm minus(const AffineForm& other) const;
  [[nodiscard]] AffineForm scaled(Rational factor) const;

  /// Drop zero coefficients.
  void normalize();

  [[nodiscard]] bool is_constant() const;

  /// Exact evaluation over an integer environment; nullopt when a
  /// variable is unbound.
  [[nodiscard]] std::optional<Rational> evaluate(const IntEnv& env) const;

  /// Human-readable rendering, e.g. "2*K' - J' + 1".
  [[nodiscard]] std::string to_string() const;
};

/// Translate a PS bound expression (over integer parameters, e.g.
/// "2*maxK + 2*M + 2") into an affine form. Handles literals, names,
/// unary minus, +, -, and multiplication by a constant side. Returns
/// nullopt for non-affine expressions.
[[nodiscard]] std::optional<AffineForm> affine_from_expr(const Expr& e);

/// A conjunction of affine inequalities, each stored as  form >= 0.
struct Polyhedron {
  std::vector<AffineForm> constraints;

  /// Add  f >= 0.
  void add_ge(AffineForm f);
  /// Add  lo <= f  (i.e. f - lo >= 0).
  void add_lower(const AffineForm& f, const AffineForm& lo);
  /// Add  f <= hi  (i.e. hi - f >= 0).
  void add_upper(const AffineForm& f, const AffineForm& hi);

  /// True when `env` (binding every variable) satisfies all constraints.
  [[nodiscard]] bool contains(const IntEnv& env) const;

  [[nodiscard]] std::string to_string() const;
};

/// One integer loop bound produced by Fourier-Motzkin elimination:
///   var >= ceil( (constant + sum coeffs*outer) / divisor )   (lower)
///   var <= floor( (constant + sum coeffs*outer) / divisor )  (upper)
/// `divisor` is always positive; `coeffs` reference outer loop variables
/// and symbolic parameters only.
struct BoundTerm {
  int64_t divisor = 1;
  int64_t constant = 0;
  std::vector<std::pair<std::string, int64_t>> coeffs;

  [[nodiscard]] int64_t numerator(const IntEnv& env) const;
  [[nodiscard]] int64_t eval_lower(const IntEnv& env) const;  // ceil div
  [[nodiscard]] int64_t eval_upper(const IntEnv& env) const;  // floor div

  /// Rendering for reports: "ceil((M - K' + 2)/2)" / plain affine text
  /// when divisor == 1.
  [[nodiscard]] std::string to_string(bool upper) const;

  friend bool operator==(const BoundTerm&, const BoundTerm&) = default;
};

/// Exact bounds of one loop level: the max over `lowers` and min over
/// `uppers`. An empty iteration space at runtime simply yields
/// lower() > upper().
struct LoopLevelBounds {
  std::string var;
  std::vector<BoundTerm> lowers;
  std::vector<BoundTerm> uppers;

  [[nodiscard]] int64_t lower(const IntEnv& env) const;
  [[nodiscard]] int64_t upper(const IntEnv& env) const;

  [[nodiscard]] std::string to_string() const;
};

/// The exact (in general non-rectangular) loop nest scanning the integer
/// points of a polyhedron in a fixed variable order, outermost first --
/// Lamport's method [10], which the paper cites for exactly this code-
/// generation step. Level k's bounds reference symbolic parameters and
/// the indices of levels 0..k-1 only.
struct LoopNestBounds {
  std::vector<LoopLevelBounds> levels;
  /// Constraints mentioning only symbolic parameters (preconditions of a
  /// non-empty space); recorded for reports, not enforced per iteration.
  std::vector<std::string> preconditions;

  [[nodiscard]] const LoopLevelBounds* find(std::string_view var) const;
  [[nodiscard]] std::string to_string() const;
};

/// Project `p` onto nested loop bounds for `loop_order` (outermost
/// first) by exact Fourier-Motzkin elimination, innermost variable
/// first. Any other variable appearing in the constraints is treated as
/// a symbolic parameter available at every level.
///
/// Scanning the resulting nest visits *exactly* the integer points of
/// `p`: constraints over a prefix of the order survive elimination and
/// are enforced at the deepest prefix level, so no in-body guard is
/// needed. (Projection can over-approximate a level's range only in
/// directions where some inner range becomes empty -- those outer values
/// execute zero iterations, preserving exactness.)
///
/// Returns nullopt when a constraint is detected infeasible at constant
/// level (the polyhedron is empty for every parameter value).
[[nodiscard]] std::optional<LoopNestBounds> fourier_motzkin_bounds(
    const Polyhedron& p, const std::vector<std::string>& loop_order);

/// The image of the transformed array's original index box under the
/// hyperplane coordinate change: constraints  lo_j <= (T^-1 x')_j <= hi_j
/// over the new variables, with the original subrange bounds kept
/// symbolic in the module parameters. Returns nullopt when a bound
/// expression is not affine in the parameters.
[[nodiscard]] std::optional<Polyhedron> transformed_domain(
    const CheckedModule& module, const HyperplaneTransform& transform);

/// Enumerate every integer point of `nest` given parameter values,
/// invoking `body` with an environment binding all loop variables (and
/// containing `params`). Iterates in lexicographic loop order. Used by
/// the property tests and the windowed wavefront executor.
void scan_loop_nest(const LoopNestBounds& nest, const IntEnv& params,
                    const std::function<void(const IntEnv&)>& body);

/// Number of integer points (scan_loop_nest with a counter).
[[nodiscard]] int64_t count_loop_nest_points(const LoopNestBounds& nest,
                                             const IntEnv& params);

}  // namespace ps
