#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "frontend/sema.hpp"
#include "support/diagnostics.hpp"
#include "transform/time_function.hpp"

namespace ps {

/// A dependence vector with symbolic components (the extension of the
/// hyperplane method to "certain forms of symbolic offsets in recursive
/// equations" the paper cites as [14], Myers & Gokhale, "Parallel
/// Scheduling of Recursively Defined Arrays"):
///
///   d = constant + sum_s coeffs[s] * m_s,
///
/// one integer coefficient vector per symbolic parameter m_s, each m_s
/// assumed to be a positive integer (m_s >= 1). The relaxation's plain
/// vectors are the special case with no symbols.
struct SymbolicDependence {
  std::vector<int64_t> constant;
  std::map<std::string, std::vector<int64_t>> symbol_coeffs;

  [[nodiscard]] size_t dims() const { return constant.size(); }

  /// The plain vector for concrete symbol values.
  [[nodiscard]] std::vector<int64_t> instantiate(
      const std::map<std::string, int64_t>& values) const;

  [[nodiscard]] std::string to_string() const;
};

/// A set of symbolic self-dependences of one array.
struct SymbolicDependenceSet {
  std::string array;
  std::vector<std::string> vars;
  std::vector<std::string> symbols;  // parameters assumed >= 1
  std::vector<SymbolicDependence> vectors;

  [[nodiscard]] size_t dims() const { return vars.size(); }
};

/// True when `coeffs` satisfies a . d >= 1 for EVERY admissible symbol
/// assignment (all m_s >= 1). By linearity this holds iff
///   a . coeffs[s] >= 0 for every symbol s, and
///   a . (constant + sum_s coeffs[s]) >= 1      (the m_s = 1 corner).
[[nodiscard]] bool satisfies_symbolic(
    const std::vector<int64_t>& coeffs,
    const std::vector<SymbolicDependence>& dependences);

/// Least time function valid for every admissible symbol value:
/// minimise sum |a_i|, ties broken lexicographically -- the same
/// ordering as solve_time_function, to which this degenerates when no
/// dependence carries symbols. Returns nullopt when infeasible (e.g. a
/// symbol pushes some dependence arbitrarily far negative in every
/// admissible direction).
[[nodiscard]] std::optional<std::vector<int64_t>> solve_time_function_symbolic(
    const std::vector<SymbolicDependence>& dependences,
    const TimeFunctionOptions& options = {});

/// Extract the self-dependences of `array`, accepting subscripts that
/// are affine in the dimension's own loop variable and the given
/// positive parameters: `A[K-1, I+b]` yields d = (1, -b). Subscripts
/// must still sit at consistent positions with unit self-coefficient;
/// `positive_params` lists the module parameters assumed >= 1. Fails
/// with diagnostics outside this fragment.
[[nodiscard]] std::optional<SymbolicDependenceSet>
extract_symbolic_dependences(const CheckedModule& module,
                             const std::string& array,
                             const std::vector<std::string>& positive_params,
                             DiagnosticEngine& diags);

}  // namespace ps
