#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ps {

/// Row-major N-dimensional array of doubles with per-dimension lower
/// bounds and optional memory windows.
///
/// A dimension with window w < extent stores only w slices; logical index
/// i maps to slice (i - lo) mod w. This realises the paper's "virtual
/// dimension": for the relaxation's A with window 2, slices K and K-1
/// share storage with slices K-2, K-4, ... (section 3.4).
class NdArray {
 public:
  NdArray() = default;

  /// `lo[d]..hi[d]` are the logical bounds; `window[d]` is the physical
  /// slice count (pass extent for a fully allocated dimension).
  NdArray(std::vector<int64_t> lo, std::vector<int64_t> hi,
          std::vector<int64_t> window);

  /// Fully allocated array.
  static NdArray full(std::vector<int64_t> lo, std::vector<int64_t> hi);

  [[nodiscard]] size_t rank() const { return lo_.size(); }
  [[nodiscard]] int64_t lo(size_t d) const { return lo_[d]; }
  [[nodiscard]] int64_t hi(size_t d) const { return hi_[d]; }
  [[nodiscard]] int64_t extent(size_t d) const { return hi_[d] - lo_[d] + 1; }
  [[nodiscard]] int64_t window(size_t d) const { return window_[d]; }
  [[nodiscard]] bool windowed() const { return windowed_; }

  /// Number of doubles actually allocated.
  [[nodiscard]] size_t allocation() const { return data_.size(); }
  /// Number of doubles a full allocation would need.
  [[nodiscard]] size_t logical_size() const { return logical_size_; }

  [[nodiscard]] double at(std::span<const int64_t> idx) const {
    return data_[offset(idx)];
  }
  void set(std::span<const int64_t> idx, double value) {
    data_[offset(idx)] = value;
  }

  /// In-bounds check against the logical bounds.
  [[nodiscard]] bool in_bounds(std::span<const int64_t> idx) const;

  /// Strength-reduced addressing for fully allocated arrays: one pass
  /// over the dimensions fusing the bounds check with the row-major
  /// offset, with the wrap modulo hoisted out entirely (it can never
  /// fire when every window equals its extent). Returns false when
  /// `idx` is outside the logical bounds. Only meaningful when
  /// !windowed(); a windowed dimension needs offset()'s modulo.
  [[nodiscard]] bool offset_unwindowed(std::span<const int64_t> idx,
                                       size_t& off) const {
    if (idx.size() != lo_.size()) return false;
    size_t o = 0;
    for (size_t d = 0; d < lo_.size(); ++d) {
      // Range-check before subtracting: bytecode subscripts are
      // arbitrary wrapped int64s, and `idx[d] - lo_[d]` on an extreme
      // value would signed-overflow (UB) and could slip past the
      // bounds test into a wild read.
      if (idx[d] < lo_[d] || idx[d] > hi_[d]) return false;
      o += static_cast<size_t>(idx[d] - lo_[d]) *
           static_cast<size_t>(stride_[d]);
    }
    off = o;
    return true;
  }

  [[nodiscard]] std::span<double> raw() { return data_; }
  [[nodiscard]] std::span<const double> raw() const { return data_; }

  /// Stable pointers to the shape tables, for the native tier's psc_arr
  /// descriptors (runtime/native_engine.hpp). Valid as long as the
  /// NdArray itself is not reshaped or moved.
  [[nodiscard]] const int64_t* lo_ptr() const { return lo_.data(); }
  [[nodiscard]] const int64_t* window_ptr() const { return window_.data(); }
  [[nodiscard]] const int64_t* stride_ptr() const { return stride_.data(); }

  void fill(double value);

  [[nodiscard]] size_t offset(std::span<const int64_t> idx) const;

 private:
  std::vector<int64_t> lo_;
  std::vector<int64_t> hi_;
  std::vector<int64_t> window_;
  std::vector<int64_t> stride_;
  std::vector<double> data_;
  size_t logical_size_ = 0;
  bool windowed_ = false;
};

}  // namespace ps
