#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/const_eval.hpp"
#include "frontend/sema.hpp"
#include "support/rational.hpp"

namespace ps {

/// Consumer-stream layer of the wavefront engine: yields the consumer
/// equation instances whose newest A'-read lands on hyperplane t, on
/// demand, in exactly the order the old eager bucket map held them
/// (equation order first, lexicographic loop order within an equation).
///
/// Construction precomputes only the per-equation affine forms of the
/// hyperplane subscripts and the rectangular loop bounds -- O(equations)
/// state. Enumerating hyperplane t then *solves* each affine form for
/// its pivot dimension instead of scanning the whole consumer box, so
/// nothing is ever materialised: peak live instances drop from
/// O(consumers in the module) to O(instances on one hyperplane), the
/// memory bound WavefrontStats::peak_bucket_instances records.
class ConsumerStream {
 public:
  /// `consumers` are equation indices of `module` reading `array`; the
  /// hyperplane coordinate of each read is its first subscript. Throws
  /// std::runtime_error for non-affine hyperplane subscripts or
  /// unevaluable consumer bounds (same contract as the old eager
  /// bucket construction).
  ConsumerStream(const CheckedModule& module,
                 const std::vector<size_t>& consumers,
                 const std::string& array, int64_t window,
                 const IntEnv& params);

  /// Conservative inclusive range of hyperplanes any instance can land
  /// on; min_t() > max_t() when there are no instances at all.
  [[nodiscard]] int64_t min_t() const { return min_t_; }
  [[nodiscard]] int64_t max_t() const { return max_t_; }

  /// Upper bound on newest - oldest hyperplane slice any single consumer
  /// instance reads: the box maximum, over every consumer and every
  /// ordered pair of its forms, of the affine difference form_j - form_k.
  /// The overlapped-flush gate compares this against window - 2: while
  /// hyperplane t flushes, the recurrence writes slice t+1, which evicts
  /// slice t+1-window -- reads back to t - (window-2) stay live.
  [[nodiscard]] int64_t max_read_span() const { return max_read_span_; }

  /// Invoke `fn(equation_index, loop_vals)` for every instance landing
  /// on hyperplane `t`, in eager-bucket order; returns the instance
  /// count. Throws when an instance spans more hyperplane slices than
  /// the window (it could never be flushed from live storage) or a
  /// hyperplane subscript evaluates non-integer.
  int64_t for_hyperplane(
      int64_t t,
      const std::function<void(size_t, const std::vector<int64_t>&)>& fn)
      const;

 private:
  /// One A'-read's hyperplane subscript as an affine form split into a
  /// constant (literals + parameter terms folded under `params`) and
  /// per-loop-dimension coefficients.
  struct Form {
    Rational c0;
    std::vector<Rational> coeffs;
    /// Last loop dimension with a nonzero coefficient (-1: constant
    /// form). Solving this dimension enumerates {v : form(v) = t}.
    int pivot = -1;
  };

  struct Consumer {
    size_t id = 0;
    std::vector<int64_t> lo;  // rectangular loop bounds, per dimension
    std::vector<int64_t> hi;
    std::vector<Form> forms;  // one per A'-read, reference order
    bool empty_box = false;
    int64_t t_min = 0;  // conservative hyperplane range of instances
    int64_t t_max = -1;
  };

  class FormCursor;

  /// Evaluate every form at `vals`; true when the instance belongs to
  /// hyperplane `t` via form `k` (newest == t, k is the first form
  /// achieving it). Throws on non-integer subscripts and window spans.
  bool accept(const Consumer& consumer, size_t k,
              const std::vector<int64_t>& vals, int64_t t) const;

  int64_t stream_consumer(
      const Consumer& consumer, int64_t t,
      const std::function<void(size_t, const std::vector<int64_t>&)>& fn)
      const;

  std::string array_;
  int64_t window_ = 0;
  std::vector<Consumer> consumers_;
  int64_t min_t_ = 0;
  int64_t max_t_ = -1;
  int64_t max_read_span_ = 0;
};

}  // namespace ps
