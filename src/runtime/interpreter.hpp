#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/const_eval.hpp"
#include "core/flowchart.hpp"
#include "core/scheduler.hpp"
#include "graph/depgraph.hpp"
#include "runtime/engine_host.hpp"
#include "runtime/ndarray.hpp"
#include "runtime/thread_pool.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

struct InterpreterOptions {
  /// Worker pool for DOALL loops; nullptr executes everything
  /// sequentially.
  ThreadPool* pool = nullptr;
  EvalEngine engine = EvalEngine::Bytecode;
  /// Bytecode VM dispatch strategy (Threaded = computed goto where the
  /// build carries it, Switch = the portable reference loop; the two
  /// are differentially tested bit-exact).
  BcDispatch dispatch = BcDispatch::Threaded;
  /// Collapse perfectly nested DOALL loops into one flat parallel range
  /// (exposes hyperplane-slab parallelism); disabled by the ablation
  /// bench.
  bool collapse_doall = true;
  /// When false, DOALL loops run as ordinary DO loops even with a pool --
  /// the sequential baseline for the speedup benches.
  bool honor_doall = true;
  /// Allocate windowed storage for dimensions the (sound) virtual-
  /// dimension analysis marked virtual (section 3.4).
  bool use_virtual_windows = false;
  const std::map<std::string, std::vector<VirtualDim>>* virtual_dims = nullptr;
  /// Exact (in general non-rectangular) loop bounds from the polyhedral
  /// projection of the transformed iteration domain (Lamport [10]).
  /// Loops whose variable has a level here use these bounds instead of
  /// the rectangular subrange; inner levels may depend on outer indices,
  /// so the guarded bounding-box scan of the rewritten module shrinks to
  /// exactly the image points. Must outlive the interpreter.
  const LoopNestBounds* exact_bounds = nullptr;
  /// Where the native tier persists compiled shared objects (normally
  /// the CompileService's ArtifactCache). nullptr compiles without
  /// persistence. Ignored unless engine == Native.
  NativeObjectStore* native_store = nullptr;
  /// Workers fanning the parallel native whole-module kernel's DOALL
  /// sites across `pool` (0 = the pool's lane count). 1 forces the
  /// single-threaded psc_module even with a pool; ignored without a
  /// pool or when the kernel has no parallel form.
  size_t native_threads = 0;
};

/// Executes a scheduled PS module: walks the flowchart, running DO loops
/// sequentially and DOALL loops on the thread pool, evaluating each
/// equation instance over N-d double storage. This plays the role of the
/// procedural multiprocessor program the paper's compiler emits C for --
/// it lets us both verify that generated schedules compute the right
/// values and measure the parallel speedup the DOALL annotations promise.
class Interpreter {
 public:
  /// `int_inputs` must bind every scalar integer parameter used in array
  /// bounds (e.g. M, maxK). `real_inputs` binds real scalar parameters.
  Interpreter(const CheckedModule& module, const DepGraph& graph,
              const Flowchart& flowchart, IntEnv int_inputs,
              std::map<std::string, double> real_inputs = {},
              const InterpreterOptions& options = {});

  /// Input/output/local array storage (inputs are written by the caller
  /// before run(); outputs read after).
  [[nodiscard]] NdArray& array(std::string_view name);
  [[nodiscard]] const NdArray& array(std::string_view name) const;

  /// Scalar value of a (computed or input) data item.
  [[nodiscard]] double scalar(std::string_view name) const;

  /// Execute the flowchart once. Throws std::runtime_error on evaluation
  /// failures (records, unbound names, out-of-range subscripts).
  void run();

  /// Zero all non-input storage so the instance can be re-run.
  void reset();

  /// Bytes of array storage allocated (used by the memory benches).
  [[nodiscard]] size_t allocated_doubles() const;

  /// The evaluator actually in use. The interpreter now rides the same
  /// EngineHost ladder as the wavefront runner: a Native request JIT-
  /// compiles the whole flowchart (emit_native_module) and degrades to
  /// Bytecode, which degrades to TreeWalk, with the causes recorded.
  [[nodiscard]] EvalEngine engine() const { return host_.engine(); }

  /// Why a lower tier than requested is in effect (empty when the
  /// requested engine runs), rendered "<tier>: <cause>" per step.
  [[nodiscard]] const std::string& fallback_reason() const {
    return host_.fallback_reason();
  }

  /// The structured (tier, cause) degradation record behind
  /// fallback_reason().
  [[nodiscard]] const std::vector<TierFallback>& fallbacks() const {
    return host_.fallbacks();
  }

  /// Native tier load details (key, cache hits, compile ms); only
  /// meaningful when engine() == Native.
  [[nodiscard]] const NativeLoadInfo& native_info() const {
    return host_.native_info();
  }

 private:
  /// Loop-index bindings, shared representation with the eval core.
  using Frame = VarFrame;

  struct RtValue {
    enum class Tag { Int, Real, Bool } tag = Tag::Real;
    int64_t i = 0;
    double d = 0;
    bool b = false;

    [[nodiscard]] double as_real() const {
      switch (tag) {
        case Tag::Int:
          return static_cast<double>(i);
        case Tag::Bool:
          return b ? 1.0 : 0.0;
        case Tag::Real:
          break;
      }
      return d;
    }
    static RtValue of_int(int64_t v) { return {Tag::Int, v, 0, false}; }
    static RtValue of_real(double v) { return {Tag::Real, 0, v, false}; }
    static RtValue of_bool(bool v) { return {Tag::Bool, 0, 0, v}; }
  };

  // Execution threads an explicit per-worker frame and VM scratch pair
  // through every step (the pool chunks clone the frame and bring a
  // fresh scratch), so no hidden thread_local couples concurrent
  // interpreters sharing an OS thread.
  void exec_list(const Flowchart& steps, Frame& frame, EvalScratch& scratch);
  void exec_step(const FlowStep& step, Frame& frame, EvalScratch& scratch);
  /// int_env_ plus the frame's loop-index bindings, for evaluating exact
  /// (outer-index-dependent) loop bounds.
  [[nodiscard]] IntEnv env_with_frame(const Frame& frame) const;
  /// Append the index tuples of a perfectly nested DOALL chain to
  /// `tuples` (chain.size() values per tuple), respecting exact bounds.
  void enumerate_levels(const std::vector<const FlowStep*>& chain,
                        size_t level, IntEnv& env,
                        std::vector<int64_t>& tuples) const;
  void exec_equation(uint32_t node, Frame& frame, EvalScratch& scratch);
  RtValue eval(const Expr& e, const Frame& frame);
  int64_t eval_int(const Expr& e, const Frame& frame);

  // -- record fields (tree-walk reference semantics) --------------------
  /// Resolve a record reference (a rank-0 record name or a subscripted
  /// record array) to its data item, appending the base subscripts.
  const DataItem& record_base(const Expr& base, const Frame& frame,
                              std::vector<int64_t>& idx);
  /// Load field `ordinal` of the record `base` refers to, mirroring the
  /// VM's trailing-subscript load (int/bool fields truncate like
  /// int-element arrays).
  RtValue eval_field(const Expr& base, std::string_view field,
                     const Frame& frame);
  /// The stored double of field `ordinal` of a record-valued expression
  /// (name / element / conditional), as a record-target equation writes
  /// it: real fields as-is, int/bool fields through the VM's
  /// load-as-integer conversion.
  double eval_field_store(const Expr& e, size_t ordinal, const Frame& frame);

  // -- engine tiers (delegate to the shared EngineHost) ------------------
  void select_engine();
  void run_native_module();
  void write_scalar(size_t data_index, RtValue value);

  const CheckedModule& module_;
  const DepGraph& graph_;
  const Flowchart& flowchart_;
  IntEnv int_env_;
  std::map<std::string, double> real_inputs_;
  InterpreterOptions options_;

  std::map<std::string, NdArray, std::less<>> arrays_;
  std::map<std::string, RtValue, std::less<>> scalars_;
  std::map<std::string, int64_t, std::less<>> enum_consts_;

  /// The shared tier ladder (tree-walk -> bytecode -> native). The emit
  /// callback the interpreter hands it wraps emit_native_module over
  /// the flowchart, so `psc --engine=native` accelerates plain
  /// interpreted runs through one whole-module JIT kernel.
  EngineHost host_;
};

}  // namespace ps
