#include "runtime/native_engine.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>

#include "support/hash.hpp"
#include "support/telemetry.hpp"

#include <sys/wait.h>

#if PS_NATIVE_ENGINE
#include <dlfcn.h>
#include <unistd.h>
#endif

namespace ps {

namespace fs = std::filesystem;

namespace {

/// Compile flags of every kernel. -ffp-contract=off pins IEEE operation
/// ordering (no fused multiply-add), which is what makes the native
/// result bit-identical to the bytecode VM's; the differential harness
/// compiles its reference C drivers the same way.
constexpr const char kCompileFlags[] =
    "-O2 -shared -fPIC -std=c99 -ffp-contract=off";
constexpr const char kAbiTag[] = "psc-native-abi-1";

std::mutex& state_mutex() {
  static std::mutex m;
  return m;
}

std::string& compiler_command() {
  static std::string cmd = "cc";
  return cmd;
}

/// Probe + fingerprint results per compiler command (the override hook
/// may switch commands mid-process in the tests).
std::map<std::string, bool>& probe_cache() {
  static std::map<std::string, bool> cache;
  return cache;
}
std::map<std::string, std::string>& fingerprint_cache() {
  static std::map<std::string, std::string> cache;
  return cache;
}

/// Live NativeModule instances by canonical .so path. Guards cache
/// eviction: a pinned object's file must not be unlinked.
std::map<std::string, int>& pin_registry() {
  static std::map<std::string, int> pins;
  return pins;
}

/// Process-local module cache by kernel key. Holds strong references:
/// a warm session keeps its JIT-compiled modules loaded for the whole
/// process (one entry per distinct kernel), so back-to-back runners
/// never re-invoke `cc` or re-dlopen. The retained .so stays pinned
/// against cache eviction -- it is mapped executable code -- until
/// native_engine_clear_in_process_cache() drops the references.
std::map<std::string, std::shared_ptr<NativeModule>>& module_cache() {
  static std::map<std::string, std::shared_ptr<NativeModule>> cache;
  return cache;
}

std::atomic<int64_t>& cc_invocation_counter() {
  static std::atomic<int64_t> count{0};
  return count;
}

std::string pin_key(const fs::path& path) {
  std::error_code ec;
  fs::path canon = fs::weakly_canonical(path, ec);
  return (ec ? path : canon).string();
}

#if PS_NATIVE_ENGINE

bool probe_compiler_locked(const std::string& cmd) {
  auto it = probe_cache().find(cmd);
  if (it != probe_cache().end()) return it->second;
  bool ok = std::system((cmd + " --version > /dev/null 2>&1").c_str()) == 0;
  probe_cache()[cmd] = ok;
  return ok;
}

/// POSIX-shell single-quote (defined below, used by the simd probe).
std::string shell_quote(const std::string& text);

std::map<std::string, bool>& simd_probe_cache() {
  static std::map<std::string, bool> cache;
  return cache;
}

/// Does `cmd` honour -fopenmp-simd? Compile a one-pragma kernel with
/// the flag under -Werror: an unknown flag (or an "unused argument"
/// warning) fails the probe and the tier keeps the plain flag set.
bool simd_enabled_locked(const std::string& cmd) {
  auto it = simd_probe_cache().find(cmd);
  if (it != simd_probe_cache().end()) return it->second;
  bool ok = false;
  std::error_code ec;
  fs::path dir = fs::temp_directory_path(ec);
  if (!ec) {
    static std::atomic<uint64_t> probe_counter{0};
    dir /= "psc_simd_probe_" + std::to_string(getpid()) + "_" +
           std::to_string(probe_counter.fetch_add(1));
    fs::create_directories(dir, ec);
    if (!ec) {
      fs::path src = dir / "probe.c";
      fs::path so = dir / "probe.so";
      std::ofstream f(src);
      f << "void psc_probe(double* restrict d, long n) {\n"
           "#pragma omp simd\n"
           "  for (long i = 0; i < n; ++i) d[i] = d[i] + 1.0;\n"
           "}\n";
      f.close();
      ok = std::system((cmd + " " + kCompileFlags +
                        " -fopenmp-simd -Werror -o " +
                        shell_quote(so.string()) + " " +
                        shell_quote(src.string()) + " > /dev/null 2>&1")
                           .c_str()) == 0;
      fs::remove_all(dir, ec);
    }
  }
  simd_probe_cache()[cmd] = ok;
  return ok;
}

/// The flags kernels are actually compiled with: kCompileFlags plus
/// -fopenmp-simd when the probe passes. Feeds both the invocation and
/// the fingerprint, so turning the flag on rolls every cache key.
std::string effective_flags_locked(const std::string& cmd) {
  std::string flags = kCompileFlags;
  if (simd_enabled_locked(cmd)) flags += " -fopenmp-simd";
  return flags;
}

std::string fingerprint_locked(const std::string& cmd) {
  auto it = fingerprint_cache().find(cmd);
  if (it != fingerprint_cache().end()) return it->second;
  std::string line = "unknown-cc";
  if (FILE* pipe = popen((cmd + " --version 2>/dev/null").c_str(), "r")) {
    char buffer[256];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      line = buffer;
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    }
    pclose(pipe);
  }
  std::string fp = line + " | " + effective_flags_locked(cmd);
  fingerprint_cache()[cmd] = fp;
  return fp;
}

/// POSIX-shell single-quote `text` so std::system passes it to cc as
/// one literal argument whatever it contains (each embedded ' becomes
/// the '\'' dance).
std::string shell_quote(const std::string& text) {
  std::string quoted = "'";
  for (char c : text) {
    if (c == '\'')
      quoted += "'\\''";
    else
      quoted += c;
  }
  quoted += "'";
  return quoted;
}

/// Read a whole file; empty string when unreadable.
std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct CompileOutput {
  std::string so_bytes;
  std::string error;
  double ms = 0.0;
};

/// Run `cc` on the kernel source in a scratch directory; returns the
/// object bytes (the scratch directory is always removed). `flags` is
/// the effective flag set resolved under the state mutex by the caller.
CompileOutput compile_kernel(const std::string& cmd, const std::string& flags,
                             const std::string& c_source) {
  static std::atomic<uint64_t> scratch_counter{0};
  CompileOutput out;
  std::error_code ec;
  fs::path dir = fs::temp_directory_path(ec);
  if (ec) {
    out.error = "no temp directory: " + ec.message();
    return out;
  }
  dir /= "psc_native_" + std::to_string(getpid()) + "_" +
         std::to_string(scratch_counter.fetch_add(1));
  fs::create_directories(dir, ec);
  if (ec) {
    out.error = "cannot create " + dir.string() + ": " + ec.message();
    return out;
  }
  fs::path src = dir / "kernel.c";
  fs::path so = dir / "kernel.so";
  fs::path log = dir / "cc.log";
  {
    std::ofstream f(src, std::ios::binary);
    f << c_source;
    if (!f) {
      out.error = "cannot write " + src.string();
      fs::remove_all(dir, ec);
      return out;
    }
  }
  // Every path is shell-quoted (including the stderr redirect): a
  // TMPDIR or cache directory containing spaces or shell
  // metacharacters must not break the invocation -- it used to, and
  // the whole native tier silently demoted to bytecode.
  std::string invocation = cmd + " " + flags + " -o " +
                           shell_quote(so.string()) + " " +
                           shell_quote(src.string()) + " -lm 2> " +
                           shell_quote(log.string());
  // The span's clock is the tier's compile timer: one pair of reads
  // feeds CompileOutput::ms (the --verbose "native" report), the trace
  // event and the cc latency histogram.
  TimedSpan span("cc-compile", "native");
  span.arg("cmd", cmd);
  cc_invocation_counter().fetch_add(1);
  MetricsRegistry::global().counter("native.cc_invocations").add(1);
  int rc = std::system(invocation.c_str());
  out.ms = span.finish_ms();
  MetricsRegistry::global().histogram("native.cc_compile_ms").record(out.ms);
  if (rc != 0) {
    std::string diag = slurp(log);
    out.error = "cc failed (" + native_describe_wait_status(rc) + ")";
    if (!diag.empty()) out.error += ": " + diag.substr(0, 512);
  } else {
    out.so_bytes = slurp(so);
    if (out.so_bytes.empty()) out.error = "cc produced no object";
  }
  fs::remove_all(dir, ec);
  return out;
}

#endif  // PS_NATIVE_ENGINE

}  // namespace

#if PS_NATIVE_ENGINE
/// dlopen + resolve every entry point; nullptr with `error` set on any
/// missing piece. `path` may already be unlinked afterwards -- the
/// mapping survives on every platform the tier supports. A class (not a
/// free function) so it can be befriended from the header without
/// exposing the NativeModule constructor.
class NativeModuleLoader {
 public:
  static std::shared_ptr<NativeModule> open(const NativeKernel& kernel,
                                            const fs::path& path,
                                            std::string& error) {
    void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
      const char* why = dlerror();
      error = "dlopen failed: " + std::string(why != nullptr ? why : "?");
      return nullptr;
    }
    auto module = std::shared_ptr<NativeModule>(
        new NativeModule(handle, path.string()));
    if (kernel.has_stripe) {
      module->stripe_ = reinterpret_cast<NativeModule::StripeFn>(
          dlsym(handle, NativeKernel::stripe_symbol()));
      if (module->stripe_ == nullptr) {
        error = "missing symbol " + std::string(NativeKernel::stripe_symbol());
        return nullptr;
      }
    }
    if (kernel.has_module) {
      module->module_ = reinterpret_cast<NativeModule::ModuleFn>(
          dlsym(handle, NativeKernel::module_symbol()));
      if (module->module_ == nullptr) {
        error = "missing symbol " + std::string(NativeKernel::module_symbol());
        return nullptr;
      }
    }
    if (kernel.has_module_par) {
      module->module_par_ = reinterpret_cast<NativeModule::ModuleParFn>(
          dlsym(handle, NativeKernel::module_par_symbol()));
      if (module->module_par_ == nullptr) {
        error = "missing symbol " +
                std::string(NativeKernel::module_par_symbol());
        return nullptr;
      }
      module->module_site_ = reinterpret_cast<NativeModule::ModuleSiteFn>(
          dlsym(handle, NativeKernel::module_site_symbol()));
      if (module->module_site_ == nullptr) {
        error = "missing symbol " +
                std::string(NativeKernel::module_site_symbol());
        return nullptr;
      }
    }
    for (size_t id : kernel.equations) {
      std::string symbol = NativeKernel::equation_symbol(id);
      auto fn = reinterpret_cast<NativeModule::EquationFn>(
          dlsym(handle, symbol.c_str()));
      if (fn == nullptr) {
        error = "missing symbol " + symbol;
        return nullptr;
      }
      module->equations_[id] = fn;
    }
    return module;
  }
};

namespace {
std::shared_ptr<NativeModule> open_module(const NativeKernel& kernel,
                                          const fs::path& path,
                                          std::string& error) {
  return NativeModuleLoader::open(kernel, path, error);
}
}  // namespace
#endif  // PS_NATIVE_ENGINE

NativeModule::NativeModule(void* handle, std::string path)
    : handle_(handle), path_(std::move(path)) {
  std::lock_guard lock(state_mutex());
  ++pin_registry()[pin_key(path_)];
}

NativeModule::~NativeModule() {
  {
    std::lock_guard lock(state_mutex());
    auto it = pin_registry().find(pin_key(path_));
    if (it != pin_registry().end() && --it->second <= 0)
      pin_registry().erase(it);
  }
#if PS_NATIVE_ENGINE
  if (handle_ != nullptr) dlclose(handle_);
#endif
}

bool native_engine_available() {
#if PS_NATIVE_ENGINE
  if (sizeof(long) != sizeof(int64_t)) return false;  // kernels assume LP64
  std::lock_guard lock(state_mutex());
  return probe_compiler_locked(compiler_command());
#else
  return false;
#endif
}

std::string native_engine_unavailable_reason() {
#if PS_NATIVE_ENGINE
  if (sizeof(long) != sizeof(int64_t))
    return "platform is not LP64 (long != int64)";
  std::lock_guard lock(state_mutex());
  if (!probe_compiler_locked(compiler_command()))
    return "no working C compiler ('" + compiler_command() + "')";
  return "";
#else
  return "built without native-tier support (PS_NATIVE_ENGINE=0)";
#endif
}

std::string native_cc_fingerprint() {
#if PS_NATIVE_ENGINE
  std::lock_guard lock(state_mutex());
  return fingerprint_locked(compiler_command());
#else
  return "native-tier-disabled";
#endif
}

bool native_engine_simd_enabled() {
#if PS_NATIVE_ENGINE
  if (!native_engine_available()) return false;
  std::lock_guard lock(state_mutex());
  return simd_enabled_locked(compiler_command());
#else
  return false;
#endif
}

std::string native_kernel_key(const std::string& c_source) {
  return sha256_hex(std::string(kAbiTag) + "\n" + native_cc_fingerprint() +
                    "\n" + c_source);
}

int64_t native_cc_invocations() { return cc_invocation_counter().load(); }

// The raw std::system() value is a wait(2) status, not an exit code: a
// compiler exiting 1 used to be reported as "exit 256", and a
// signal-killed cc was indistinguishable from a failing one.
std::string native_describe_wait_status(int status) {
  if (status == -1) return "could not spawn shell";
  if (WIFEXITED(status))
    return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  return "wait status " + std::to_string(status);
}

bool native_object_in_use(const std::filesystem::path& path) {
  std::lock_guard lock(state_mutex());
  return pin_registry().count(pin_key(path)) != 0;
}

std::shared_ptr<NativeModule> load_native_module(const NativeKernel& kernel,
                                                 NativeObjectStore* store,
                                                 NativeLoadInfo& info) {
  info = NativeLoadInfo{};
#if !PS_NATIVE_ENGINE
  (void)kernel;
  (void)store;
  info.error = native_engine_unavailable_reason();
  return nullptr;
#else
  if (!native_engine_available()) {
    info.error = native_engine_unavailable_reason();
    return nullptr;
  }
  info.key = native_kernel_key(kernel.c_source);

  // 1. A module loaded earlier in this process.
  {
    std::lock_guard lock(state_mutex());
    auto it = module_cache().find(info.key);
    if (it != module_cache().end()) {
      info.ok = true;
      info.in_process_hit = true;
      info.cache_hit = true;
      info.so_path = it->second->path();
      return it->second;
    }
  }

  std::string cmd;
  std::string flags;
  {
    std::lock_guard lock(state_mutex());
    cmd = compiler_command();
    flags = effective_flags_locked(cmd);
  }

  // 2. A shared object published by an earlier session.
  if (store != nullptr) {
    if (auto cached = store->native_lookup(info.key)) {
      std::string error;
      if (auto module = open_module(kernel, *cached, error)) {
        info.ok = true;
        info.cache_hit = true;
        info.so_path = module->path();
        std::lock_guard lock(state_mutex());
        module_cache()[info.key] = module;
        return module;
      }
      // Corrupt or wrong-arch object: drop it and recompile below.
      store->native_discard(info.key);
    }
  }

  // 3. Compile.
  CompileOutput compiled = compile_kernel(cmd, flags, kernel.c_source);
  info.compile_ms = compiled.ms;
  if (!compiled.error.empty()) {
    info.error = compiled.error;
    return nullptr;
  }

  fs::path load_path;
  fs::path scratch;
  if (store != nullptr) {
    if (auto published = store->native_publish(info.key, compiled.so_bytes))
      load_path = *published;
  }
  if (load_path.empty()) {
    // No store (or publish refused): load from a private scratch copy,
    // removed right after dlopen -- the mapping keeps the code alive.
    static std::atomic<uint64_t> load_counter{0};
    std::error_code ec;
    scratch = fs::temp_directory_path(ec);
    if (ec) {
      info.error = "no temp directory: " + ec.message();
      return nullptr;
    }
    scratch /= "psc_native_load_" + std::to_string(getpid()) + "_" +
               std::to_string(load_counter.fetch_add(1));
    fs::create_directories(scratch, ec);
    load_path = scratch / "kernel.so";
    std::ofstream f(load_path, std::ios::binary);
    f.write(compiled.so_bytes.data(),
            static_cast<std::streamsize>(compiled.so_bytes.size()));
    if (!f) {
      info.error = "cannot write " + load_path.string();
      return nullptr;
    }
    f.close();
  }

  std::string error;
  auto module = open_module(kernel, load_path, error);
  if (!scratch.empty()) {
    std::error_code ec;
    fs::remove_all(scratch, ec);
  }
  if (module == nullptr) {
    info.error = error;
    return nullptr;
  }
  info.ok = true;
  info.so_path = module->path();
  std::lock_guard lock(state_mutex());
  module_cache()[info.key] = module;
  return module;
#endif
}

void native_engine_clear_in_process_cache() {
  // Swap the retained modules out first: ~NativeModule takes the state
  // mutex to unpin its .so, so destroying them under the lock would
  // deadlock.
  std::map<std::string, std::shared_ptr<NativeModule>> dropped;
  {
    std::lock_guard lock(state_mutex());
    dropped.swap(module_cache());
  }
}

void native_engine_set_compiler(const std::string& command) {
  std::lock_guard lock(state_mutex());
  compiler_command() = command.empty() ? "cc" : command;
}

}  // namespace ps
