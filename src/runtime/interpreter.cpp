#include "runtime/interpreter.hpp"

#include <cmath>
#include <exception>
#include <stdexcept>

namespace ps {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("interpreter: " + message);
}

}  // namespace

Interpreter::Interpreter(const CheckedModule& module, const DepGraph& graph,
                         const Flowchart& flowchart, IntEnv int_inputs,
                         std::map<std::string, double> real_inputs,
                         const InterpreterOptions& options)
    : module_(module),
      graph_(graph),
      flowchart_(flowchart),
      int_env_(std::move(int_inputs)),
      real_inputs_(std::move(real_inputs)),
      options_(options) {
  for (const auto& [name, type] : module_.named_types) {
    if (type->kind != TypeKind::Enum) continue;
    for (size_t ord = 0; ord < type->enumerators.size(); ++ord)
      enum_consts_[type->enumerators[ord]] = static_cast<int64_t>(ord);
  }

  for (const DataItem& item : module_.data) {
    if (item.elem != nullptr && item.elem->kind == TypeKind::Record)
      fail("record-typed data item '" + item.name + "' is not supported");
    if (item.is_scalar()) {
      if (item.cls == DataClass::Input) {
        auto ri = real_inputs_.find(item.name);
        auto ii = int_env_.find(item.name);
        if (ri != real_inputs_.end())
          scalars_[item.name] = RtValue::of_real(ri->second);
        else if (ii != int_env_.end())
          scalars_[item.name] = RtValue::of_int(ii->second);
        else
          fail("no value provided for scalar input '" + item.name + "'");
      }
      continue;
    }
    std::vector<int64_t> lo;
    std::vector<int64_t> hi;
    std::vector<int64_t> window;
    for (size_t d = 0; d < item.dims.size(); ++d) {
      const Type* dim = item.dims[d];
      auto l = eval_const_int(*dim->lo, int_env_);
      auto h = eval_const_int(*dim->hi, int_env_);
      if (!l || !h)
        fail("cannot evaluate bounds of '" + item.name +
             "'; bind its parameters in int_inputs");
      lo.push_back(*l);
      hi.push_back(*h);
      int64_t extent = *h - *l + 1;
      int64_t w = extent;
      if (options_.use_virtual_windows && options_.virtual_dims != nullptr &&
          item.cls == DataClass::Local) {
        auto it = options_.virtual_dims->find(item.name);
        if (it != options_.virtual_dims->end() && d < it->second.size() &&
            it->second[d].is_virtual)
          w = std::min<int64_t>(extent, it->second[d].window);
      }
      window.push_back(w);
    }
    arrays_.emplace(item.name,
                    NdArray(std::move(lo), std::move(hi), std::move(window)));
  }

  if (options_.engine == EvalEngine::Bytecode) compile_programs();
}

void Interpreter::compile_programs() {
  layout_ = BcLayout::for_module(module_);
  array_table_.assign(static_cast<size_t>(layout_.array_count), nullptr);
  scalar_i_.assign(static_cast<size_t>(layout_.scalar_count), 0);
  scalar_d_.assign(static_cast<size_t>(layout_.scalar_count), 0.0);
  for (size_t i = 0; i < module_.data.size(); ++i) {
    const DataItem& item = module_.data[i];
    if (layout_.array_slot[i] >= 0)
      array_table_[static_cast<size_t>(layout_.array_slot[i])] =
          &arrays_.find(item.name)->second;
    if (layout_.scalar_slot[i] >= 0) {
      auto sc = scalars_.find(item.name);
      if (sc != scalars_.end()) {
        size_t slot = static_cast<size_t>(layout_.scalar_slot[i]);
        scalar_d_[slot] = sc->second.as_real();
        scalar_i_[slot] = sc->second.tag == RtValue::Tag::Int
                              ? sc->second.i
                              : static_cast<int64_t>(sc->second.as_real());
      }
    }
  }
  programs_.clear();
  programs_.reserve(module_.equations.size());
  for (const CheckedEquation& eq : module_.equations) {
    EquationPrograms programs;
    programs.rhs = compile_expr(*eq.rhs, module_, layout_);
    for (const LhsSubscript& sub : eq.lhs_subs) {
      if (sub.is_index_var)
        programs.lhs_fixed.push_back(nullptr);
      else
        programs.lhs_fixed.push_back(std::make_unique<BcProgram>(
            compile_expr(*sub.fixed, module_, layout_)));
    }
    programs_.push_back(std::move(programs));
  }
}

void Interpreter::write_scalar(size_t data_index, RtValue value) {
  const DataItem& item = module_.data[data_index];
  scalars_[item.name] = value;
  if (!layout_.scalar_slot.empty() && layout_.scalar_slot[data_index] >= 0) {
    size_t slot = static_cast<size_t>(layout_.scalar_slot[data_index]);
    scalar_d_[slot] = value.as_real();
    scalar_i_[slot] = value.tag == RtValue::Tag::Int
                          ? value.i
                          : static_cast<int64_t>(value.as_real());
  }
}

Interpreter::BcSlot Interpreter::run_program(const BcProgram& p,
                                             const Frame& frame) {
  thread_local std::vector<BcSlot> stack;
  thread_local std::vector<int64_t> idx;
  stack.clear();
  if (stack.capacity() < p.max_stack + 4) stack.reserve(p.max_stack + 4);

  constexpr size_t kMaxVars = 8;
  int64_t vars[kMaxVars];
  if (p.var_names.size() > kMaxVars)
    fail("loop nest deeper than the bytecode engine supports");
  for (size_t v = 0; v < p.var_names.size(); ++v) {
    const int64_t* value = frame.find(p.var_names[v]);
    if (value == nullptr)
      fail("unbound index variable '" + p.var_names[v] + "'");
    vars[v] = *value;
  }

  auto push_i = [&](int64_t v) {
    BcSlot s;
    s.i = v;
    stack.push_back(s);
  };
  auto push_d = [&](double v) {
    BcSlot s;
    s.d = v;
    stack.push_back(s);
  };
  auto pop = [&]() {
    BcSlot s = stack.back();
    stack.pop_back();
    return s;
  };

  size_t pc = 0;
  while (true) {
    const BcInstr& instr = p.code[pc];
    switch (instr.op) {
      case BcOp::PushInt: push_i(instr.imm); break;
      case BcOp::PushReal: push_d(instr.dimm); break;
      case BcOp::LoadVar: push_i(vars[static_cast<size_t>(instr.a)]); break;
      case BcOp::LoadScalarI:
        push_i(scalar_i_[static_cast<size_t>(instr.a)]);
        break;
      case BcOp::LoadScalarD:
        push_d(scalar_d_[static_cast<size_t>(instr.a)]);
        break;
      case BcOp::LoadArrayI:
      case BcOp::LoadArrayD: {
        size_t rank = static_cast<size_t>(instr.b);
        idx.resize(rank);
        for (size_t d = rank; d-- > 0;) idx[d] = pop().i;
        NdArray* arr = array_table_[static_cast<size_t>(instr.a)];
        if (!arr->in_bounds(idx)) fail("read outside array bounds");
        double v = arr->at(idx);
        if (instr.op == BcOp::LoadArrayD)
          push_d(v);
        else
          push_i(static_cast<int64_t>(v));
        break;
      }
      case BcOp::IntToReal: {
        BcSlot s = pop();
        push_d(static_cast<double>(s.i));
        break;
      }
#define PS_BIN_I(OP, EXPR)                              case BcOp::OP: {                                    int64_t rhs = pop().i;                            int64_t lhs = pop().i;                            push_i(EXPR);                                     break;                                          }
#define PS_BIN_D(OP, EXPR)                              case BcOp::OP: {                                    double rhs = pop().d;                             double lhs = pop().d;                             push_d(EXPR);                                     break;                                          }
#define PS_CMP_D(OP, EXPR)                              case BcOp::OP: {                                    double rhs = pop().d;                             double lhs = pop().d;                             push_i(EXPR);                                     break;                                          }
      PS_BIN_I(AddI, lhs + rhs)
      PS_BIN_I(SubI, lhs - rhs)
      PS_BIN_I(MulI, lhs * rhs)
      case BcOp::DivI: {
        int64_t rhs = pop().i;
        int64_t lhs = pop().i;
        if (rhs == 0) fail("'div' by zero");
        push_i(lhs / rhs);
        break;
      }
      case BcOp::ModI: {
        int64_t rhs = pop().i;
        int64_t lhs = pop().i;
        if (rhs == 0) fail("'mod' by zero");
        push_i(lhs % rhs);
        break;
      }
      case BcOp::NegI: stack.back().i = -stack.back().i; break;
      PS_BIN_D(AddD, lhs + rhs)
      PS_BIN_D(SubD, lhs - rhs)
      PS_BIN_D(MulD, lhs * rhs)
      PS_BIN_D(DivD, lhs / rhs)
      case BcOp::NegD: stack.back().d = -stack.back().d; break;
      PS_BIN_I(CmpEqI, lhs == rhs ? 1 : 0)
      PS_BIN_I(CmpNeI, lhs != rhs ? 1 : 0)
      PS_BIN_I(CmpLtI, lhs < rhs ? 1 : 0)
      PS_BIN_I(CmpLeI, lhs <= rhs ? 1 : 0)
      PS_BIN_I(CmpGtI, lhs > rhs ? 1 : 0)
      PS_BIN_I(CmpGeI, lhs >= rhs ? 1 : 0)
      PS_CMP_D(CmpEqD, lhs == rhs ? 1 : 0)
      PS_CMP_D(CmpNeD, lhs != rhs ? 1 : 0)
      PS_CMP_D(CmpLtD, lhs < rhs ? 1 : 0)
      PS_CMP_D(CmpLeD, lhs <= rhs ? 1 : 0)
      PS_CMP_D(CmpGtD, lhs > rhs ? 1 : 0)
      PS_CMP_D(CmpGeD, lhs >= rhs ? 1 : 0)
#undef PS_BIN_I
#undef PS_BIN_D
#undef PS_CMP_D
      case BcOp::NotB:
        stack.back().i = stack.back().i == 0 ? 1 : 0;
        break;
      case BcOp::JumpIfFalse: {
        int64_t cond = pop().i;
        if (cond == 0) {
          pc = static_cast<size_t>(instr.a);
          continue;
        }
        break;
      }
      case BcOp::Jump:
        pc = static_cast<size_t>(instr.a);
        continue;
      case BcOp::AbsI:
        stack.back().i = stack.back().i < 0 ? -stack.back().i : stack.back().i;
        break;
      case BcOp::AbsD: stack.back().d = std::fabs(stack.back().d); break;
      case BcOp::MinI: {
        int64_t rhs = pop().i;
        stack.back().i = std::min(stack.back().i, rhs);
        break;
      }
      case BcOp::MaxI: {
        int64_t rhs = pop().i;
        stack.back().i = std::max(stack.back().i, rhs);
        break;
      }
      case BcOp::MinD: {
        double rhs = pop().d;
        stack.back().d = std::min(stack.back().d, rhs);
        break;
      }
      case BcOp::MaxD: {
        double rhs = pop().d;
        stack.back().d = std::max(stack.back().d, rhs);
        break;
      }
      case BcOp::Sqrt: stack.back().d = std::sqrt(stack.back().d); break;
      case BcOp::Sin: stack.back().d = std::sin(stack.back().d); break;
      case BcOp::Cos: stack.back().d = std::cos(stack.back().d); break;
      case BcOp::Exp: stack.back().d = std::exp(stack.back().d); break;
      case BcOp::Ln: stack.back().d = std::log(stack.back().d); break;
      case BcOp::FloorD: {
        double v = pop().d;
        push_i(static_cast<int64_t>(std::floor(v)));
        break;
      }
      case BcOp::CeilD: {
        double v = pop().d;
        push_i(static_cast<int64_t>(std::ceil(v)));
        break;
      }
      case BcOp::Halt:
        return stack.back();
    }
    ++pc;
  }
}

NdArray& Interpreter::array(std::string_view name) {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) fail("no array named '" + std::string(name) + "'");
  return it->second;
}

const NdArray& Interpreter::array(std::string_view name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) fail("no array named '" + std::string(name) + "'");
  return it->second;
}

double Interpreter::scalar(std::string_view name) const {
  auto it = scalars_.find(name);
  if (it == scalars_.end())
    fail("no scalar value for '" + std::string(name) + "'");
  return it->second.as_real();
}

size_t Interpreter::allocated_doubles() const {
  size_t total = 0;
  for (const auto& [name, arr] : arrays_) total += arr.allocation();
  return total;
}

void Interpreter::reset() {
  for (auto& [name, arr] : arrays_) {
    const DataItem* item = module_.find_data(name);
    if (item != nullptr && item->cls != DataClass::Input) arr.fill(0.0);
  }
  for (auto it = scalars_.begin(); it != scalars_.end();) {
    const DataItem* item = module_.find_data(it->first);
    if (item != nullptr && item->cls != DataClass::Input)
      it = scalars_.erase(it);
    else
      ++it;
  }
}

void Interpreter::run() {
  Frame frame;
  exec_list(flowchart_, frame);
}

void Interpreter::exec_list(const Flowchart& steps, Frame& frame) {
  for (const FlowStep& step : steps) exec_step(step, frame);
}

void Interpreter::exec_step(const FlowStep& step, Frame& frame) {
  if (step.kind == FlowStep::Kind::Equation) {
    exec_equation(step.node, frame);
    return;
  }
  const LoopLevelBounds* exact =
      options_.exact_bounds == nullptr ? nullptr
                                       : options_.exact_bounds->find(step.var);
  std::optional<int64_t> lo, hi;
  if (exact != nullptr) {
    IntEnv env = env_with_frame(frame);
    lo = exact->lower(env);
    hi = exact->upper(env);
  } else {
    lo = eval_const_int(*step.range->lo, int_env_);
    hi = eval_const_int(*step.range->hi, int_env_);
    if (!lo || !hi)
      fail("cannot evaluate bounds of loop over '" + step.var + "'");
  }
  if (*hi < *lo) return;

  bool parallel = step.loop == LoopKind::Parallel && options_.honor_doall &&
                  options_.pool != nullptr && *hi - *lo >= 1;
  if (!parallel) {
    frame.vars.emplace_back(step.var, 0);
    for (int64_t it = *lo; it <= *hi; ++it) {
      frame.vars.back().second = it;
      exec_list(step.children, frame);
    }
    frame.vars.pop_back();
    return;
  }

  if (options_.exact_bounds != nullptr) {
    // Non-rectangular bounds: inner extents may depend on outer indices,
    // so the flat-range collapse below does not apply. Instead enumerate
    // the index tuples of the maximal perfectly nested DOALL chain
    // sequentially (bound evaluation is trivially cheap next to the
    // equation bodies) and self-schedule the tuple list on the pool.
    std::vector<const FlowStep*> chain{&step};
    const Flowchart* body = &step.children;
    while (options_.collapse_doall && body->size() == 1 &&
           (*body)[0].kind == FlowStep::Kind::Loop &&
           (*body)[0].loop == LoopKind::Parallel) {
      chain.push_back(&(*body)[0]);
      body = &(*body)[0].children;
    }
    const size_t width = chain.size();
    std::vector<int64_t> tuples;
    {
      IntEnv env = env_with_frame(frame);
      enumerate_levels(chain, 0, env, tuples);
    }
    if (tuples.empty()) return;
    const Flowchart& innermost = *body;
    const int64_t total = static_cast<int64_t>(tuples.size() / width);

    std::exception_ptr error;
    std::mutex error_mutex;
    options_.pool->parallel_for_chunked(
        0, total, [&](int64_t from, int64_t to) {
          try {
            Frame local = frame;  // private index bindings per chunk
            size_t base = local.vars.size();
            for (const FlowStep* level : chain)
              local.vars.emplace_back(level->var, 0);
            for (int64_t t = from; t < to; ++t) {
              for (size_t d = 0; d < width; ++d)
                local.vars[base + d].second =
                    tuples[static_cast<size_t>(t) * width + d];
              exec_list(innermost, local);
            }
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) error = std::current_exception();
          }
        });
    if (error) std::rethrow_exception(error);
    return;
  }

  // Collapse a maximal chain of perfectly nested DOALL loops (whose
  // bounds do not depend on the outer indices) into one flat parallel
  // range, so e.g. DOALL I' (DOALL J') over an 8 x 98 hyperplane slab
  // exposes 784-way parallelism rather than 8-way.
  struct Level {
    const FlowStep* loop;
    int64_t lo;
    int64_t extent;
  };
  std::vector<Level> levels{{&step, *lo, *hi - *lo + 1}};
  const Flowchart* body = &step.children;
  while (options_.collapse_doall && body->size() == 1 && (*body)[0].kind == FlowStep::Kind::Loop &&
         (*body)[0].loop == LoopKind::Parallel) {
    const FlowStep& inner = (*body)[0];
    auto ilo = eval_const_int(*inner.range->lo, int_env_);
    auto ihi = eval_const_int(*inner.range->hi, int_env_);
    if (!ilo || !ihi) break;  // bounds depend on an enclosing index
    if (*ihi < *ilo) {
      // The collapsed nest is empty.
      return;
    }
    levels.push_back(Level{&inner, *ilo, *ihi - *ilo + 1});
    body = &inner.children;
  }
  int64_t total = 1;
  for (const Level& level : levels) total *= level.extent;
  const Flowchart& innermost = *body;

  std::exception_ptr error;
  std::mutex error_mutex;
  options_.pool->parallel_for_chunked(
      0, total, [&](int64_t from, int64_t to) {
        try {
          Frame local = frame;  // private index bindings per chunk
          size_t base = local.vars.size();
          for (const Level& level : levels)
            local.vars.emplace_back(level.loop->var, 0);
          for (int64_t flat = from; flat < to; ++flat) {
            int64_t rest = flat;
            for (size_t d = levels.size(); d-- > 0;) {
              local.vars[base + d].second =
                  levels[d].lo + rest % levels[d].extent;
              rest /= levels[d].extent;
            }
            exec_list(innermost, local);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
  if (error) std::rethrow_exception(error);
}

IntEnv Interpreter::env_with_frame(const Frame& frame) const {
  IntEnv env = int_env_;
  for (const auto& [var, value] : frame.vars) env[std::string(var)] = value;
  return env;
}

void Interpreter::enumerate_levels(const std::vector<const FlowStep*>& chain,
                                   size_t level, IntEnv& env,
                                   std::vector<int64_t>& tuples) const {
  if (level == chain.size()) {
    for (const FlowStep* step : chain)
      tuples.push_back(env.at(step->var));
    return;
  }
  const FlowStep& step = *chain[level];
  const LoopLevelBounds* exact =
      options_.exact_bounds == nullptr ? nullptr
                                       : options_.exact_bounds->find(step.var);
  int64_t lo = 0;
  int64_t hi = -1;
  if (exact != nullptr) {
    lo = exact->lower(env);
    hi = exact->upper(env);
  } else {
    auto rlo = eval_const_int(*step.range->lo, int_env_);
    auto rhi = eval_const_int(*step.range->hi, int_env_);
    if (!rlo || !rhi)
      fail("cannot evaluate bounds of loop over '" + step.var + "'");
    lo = *rlo;
    hi = *rhi;
  }
  for (int64_t it = lo; it <= hi; ++it) {
    env[step.var] = it;
    enumerate_levels(chain, level + 1, env, tuples);
  }
  env.erase(step.var);
}

void Interpreter::exec_equation(uint32_t node, Frame& frame) {
  const CheckedEquation& eq = graph_.equation_of(graph_.node(node));
  const DataItem& target = module_.data[eq.target];

  if (options_.engine == EvalEngine::Bytecode) {
    const EquationPrograms& programs = programs_[eq.id];
    BcSlot result = run_program(programs.rhs, frame);
    double value = programs.rhs.result_real
                       ? result.d
                       : static_cast<double>(result.i);
    if (target.is_scalar()) {
      write_scalar(eq.target, programs.rhs.result_real
                                  ? RtValue::of_real(result.d)
                                  : RtValue::of_int(result.i));
      return;
    }
    std::vector<int64_t> idx;
    idx.reserve(eq.lhs_subs.size());
    for (size_t p = 0; p < eq.lhs_subs.size(); ++p) {
      const LhsSubscript& sub = eq.lhs_subs[p];
      if (sub.is_index_var) {
        const int64_t* v = frame.find(sub.var);
        if (v == nullptr)
          fail(eq.display_name + ": unbound index variable '" + sub.var +
               "'");
        idx.push_back(*v);
      } else {
        BcSlot s = run_program(*programs.lhs_fixed[p], frame);
        idx.push_back(programs.lhs_fixed[p]->result_real
                          ? static_cast<int64_t>(s.d)
                          : s.i);
      }
    }
    NdArray& arr = arrays_.find(target.name)->second;
    if (!arr.in_bounds(idx))
      fail(eq.display_name + ": write outside the bounds of '" +
           target.name + "'");
    arr.set(idx, value);
    return;
  }

  RtValue value = eval(*eq.rhs, frame);

  if (target.is_scalar()) {
    write_scalar(eq.target, value);
    return;
  }

  std::vector<int64_t> idx;
  idx.reserve(eq.lhs_subs.size());
  for (const LhsSubscript& sub : eq.lhs_subs) {
    if (sub.is_index_var) {
      const int64_t* v = frame.find(sub.var);
      if (v == nullptr)
        fail(eq.display_name + ": unbound index variable '" + sub.var + "'");
      idx.push_back(*v);
    } else {
      idx.push_back(eval_int(*sub.fixed, frame));
    }
  }
  NdArray& arr = arrays_.find(target.name)->second;
  if (!arr.in_bounds(idx))
    fail(eq.display_name + ": write outside the bounds of '" + target.name +
         "'");
  arr.set(idx, value.as_real());
}

int64_t Interpreter::eval_int(const Expr& e, const Frame& frame) {
  RtValue v = eval(e, frame);
  switch (v.tag) {
    case RtValue::Tag::Int:
      return v.i;
    case RtValue::Tag::Real: {
      double r = std::round(v.d);
      if (r != v.d) fail("non-integer subscript value");
      return static_cast<int64_t>(r);
    }
    case RtValue::Tag::Bool:
      fail("boolean used as integer");
  }
  return 0;
}

Interpreter::RtValue Interpreter::eval(const Expr& e, const Frame& frame) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return RtValue::of_int(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::RealLit:
      return RtValue::of_real(static_cast<const RealLitExpr&>(e).value);
    case ExprKind::BoolLit:
      return RtValue::of_bool(static_cast<const BoolLitExpr&>(e).value);
    case ExprKind::Name: {
      const auto& name = static_cast<const NameExpr&>(e).name;
      if (const int64_t* v = frame.find(name)) return RtValue::of_int(*v);
      auto sc = scalars_.find(name);
      if (sc != scalars_.end()) return sc->second;
      auto en = enum_consts_.find(name);
      if (en != enum_consts_.end()) return RtValue::of_int(en->second);
      fail("no value for name '" + name + "'");
    }
    case ExprKind::Index: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      if (ix.base->kind != ExprKind::Name)
        fail("unsupported subscripted expression");
      const auto& name = static_cast<const NameExpr&>(*ix.base).name;
      auto it = arrays_.find(name);
      if (it == arrays_.end()) fail("no array named '" + name + "'");
      std::vector<int64_t> idx;
      idx.reserve(ix.subs.size());
      for (const auto& sub : ix.subs) idx.push_back(eval_int(*sub, frame));
      if (!it->second.in_bounds(idx))
        fail("read outside the bounds of '" + name + "'");
      double v = it->second.at(idx);
      const DataItem* item = module_.find_data(name);
      if (item != nullptr && item->elem->scalar_kind() == TypeKind::Int)
        return RtValue::of_int(static_cast<int64_t>(v));
      return RtValue::of_real(v);
    }
    case ExprKind::Field:
      fail("record fields are not supported by the interpreter");
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      RtValue v = eval(*u.operand, frame);
      if (u.op == UnaryOp::Neg) {
        if (v.tag == RtValue::Tag::Int) return RtValue::of_int(-v.i);
        return RtValue::of_real(-v.as_real());
      }
      return RtValue::of_bool(!v.b);
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinaryOp::And: {
          RtValue l = eval(*b.lhs, frame);
          if (!l.b) return RtValue::of_bool(false);
          return eval(*b.rhs, frame);
        }
        case BinaryOp::Or: {
          RtValue l = eval(*b.lhs, frame);
          if (l.b) return RtValue::of_bool(true);
          return eval(*b.rhs, frame);
        }
        default:
          break;
      }
      RtValue l = eval(*b.lhs, frame);
      RtValue r = eval(*b.rhs, frame);
      bool both_int =
          l.tag == RtValue::Tag::Int && r.tag == RtValue::Tag::Int;
      switch (b.op) {
        case BinaryOp::Add:
          return both_int ? RtValue::of_int(l.i + r.i)
                          : RtValue::of_real(l.as_real() + r.as_real());
        case BinaryOp::Sub:
          return both_int ? RtValue::of_int(l.i - r.i)
                          : RtValue::of_real(l.as_real() - r.as_real());
        case BinaryOp::Mul:
          return both_int ? RtValue::of_int(l.i * r.i)
                          : RtValue::of_real(l.as_real() * r.as_real());
        case BinaryOp::Div:
          return RtValue::of_real(l.as_real() / r.as_real());
        case BinaryOp::IntDiv:
          if (!both_int || r.i == 0) fail("bad 'div' operands");
          return RtValue::of_int(l.i / r.i);
        case BinaryOp::Mod:
          if (!both_int || r.i == 0) fail("bad 'mod' operands");
          return RtValue::of_int(l.i % r.i);
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
          if (both_int) {
            switch (b.op) {
              case BinaryOp::Eq: return RtValue::of_bool(l.i == r.i);
              case BinaryOp::Ne: return RtValue::of_bool(l.i != r.i);
              case BinaryOp::Lt: return RtValue::of_bool(l.i < r.i);
              case BinaryOp::Le: return RtValue::of_bool(l.i <= r.i);
              case BinaryOp::Gt: return RtValue::of_bool(l.i > r.i);
              default: return RtValue::of_bool(l.i >= r.i);
            }
          }
          double a = l.as_real();
          double c = r.as_real();
          switch (b.op) {
            case BinaryOp::Eq: return RtValue::of_bool(a == c);
            case BinaryOp::Ne: return RtValue::of_bool(a != c);
            case BinaryOp::Lt: return RtValue::of_bool(a < c);
            case BinaryOp::Le: return RtValue::of_bool(a <= c);
            case BinaryOp::Gt: return RtValue::of_bool(a > c);
            default: return RtValue::of_bool(a >= c);
          }
        }
        default:
          fail("unsupported binary operator");
      }
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      RtValue c = eval(*i.cond, frame);
      return eval(c.b ? *i.then_expr : *i.else_expr, frame);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      auto arg = [&](size_t k) { return eval(*c.args[k], frame); };
      if (c.callee == "abs") {
        RtValue v = arg(0);
        if (v.tag == RtValue::Tag::Int)
          return RtValue::of_int(v.i < 0 ? -v.i : v.i);
        return RtValue::of_real(std::fabs(v.as_real()));
      }
      if (c.callee == "min" || c.callee == "max") {
        RtValue a = arg(0);
        RtValue b = arg(1);
        bool both_int =
            a.tag == RtValue::Tag::Int && b.tag == RtValue::Tag::Int;
        bool take_min = c.callee == "min";
        if (both_int)
          return RtValue::of_int(take_min ? std::min(a.i, b.i)
                                          : std::max(a.i, b.i));
        return RtValue::of_real(take_min
                                    ? std::min(a.as_real(), b.as_real())
                                    : std::max(a.as_real(), b.as_real()));
      }
      if (c.callee == "sqrt") return RtValue::of_real(std::sqrt(arg(0).as_real()));
      if (c.callee == "sin") return RtValue::of_real(std::sin(arg(0).as_real()));
      if (c.callee == "cos") return RtValue::of_real(std::cos(arg(0).as_real()));
      if (c.callee == "exp") return RtValue::of_real(std::exp(arg(0).as_real()));
      if (c.callee == "ln") return RtValue::of_real(std::log(arg(0).as_real()));
      if (c.callee == "floor")
        return RtValue::of_int(static_cast<int64_t>(std::floor(arg(0).as_real())));
      if (c.callee == "ceil")
        return RtValue::of_int(static_cast<int64_t>(std::ceil(arg(0).as_real())));
      fail("unknown intrinsic '" + c.callee + "'");
    }
  }
  fail("unreachable expression kind");
}

}  // namespace ps
