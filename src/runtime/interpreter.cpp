#include "runtime/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <stdexcept>

#include "codegen/native_emitter.hpp"
#include "support/telemetry.hpp"

namespace ps {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("interpreter: " + message);
}

}  // namespace

Interpreter::Interpreter(const CheckedModule& module, const DepGraph& graph,
                         const Flowchart& flowchart, IntEnv int_inputs,
                         std::map<std::string, double> real_inputs,
                         const InterpreterOptions& options)
    : module_(module),
      graph_(graph),
      flowchart_(flowchart),
      int_env_(std::move(int_inputs)),
      real_inputs_(std::move(real_inputs)),
      options_(options) {
  for (const auto& [name, type] : module_.named_types) {
    if (type->kind != TypeKind::Enum) continue;
    for (size_t ord = 0; ord < type->enumerators.size(); ++ord)
      enum_consts_[type->enumerators[ord]] = static_cast<int64_t>(ord);
  }

  for (const DataItem& item : module_.data) {
    // Record items store as arrays with one trailing field dimension
    // (see bc_is_record_item): a field access is an ordinary array
    // load with the ordinal as the extra subscript, shared by all
    // engine tiers. Only scalar-field records fit that layout.
    const bool record = bc_is_record_item(item);
    if (record)
      for (const auto& [fname, ftype] : item.elem->fields)
        if (ftype->kind == TypeKind::Record || ftype->kind == TypeKind::Array)
          fail("record field '" + fname + "' of '" + item.name +
               "' is not scalar; nested records are not supported");
    if (item.is_scalar() && !record) {
      if (item.cls == DataClass::Input) {
        auto ri = real_inputs_.find(item.name);
        auto ii = int_env_.find(item.name);
        if (ri != real_inputs_.end())
          scalars_[item.name] = RtValue::of_real(ri->second);
        else if (ii != int_env_.end())
          scalars_[item.name] = RtValue::of_int(ii->second);
        else
          fail("no value provided for scalar input '" + item.name + "'");
      }
      continue;
    }
    std::vector<int64_t> lo;
    std::vector<int64_t> hi;
    std::vector<int64_t> window;
    for (size_t d = 0; d < item.dims.size(); ++d) {
      const Type* dim = item.dims[d];
      auto l = eval_const_int(*dim->lo, int_env_);
      auto h = eval_const_int(*dim->hi, int_env_);
      if (!l || !h)
        fail("cannot evaluate bounds of '" + item.name +
             "'; bind its parameters in int_inputs");
      lo.push_back(*l);
      hi.push_back(*h);
      int64_t extent = *h - *l + 1;
      int64_t w = extent;
      if (options_.use_virtual_windows && options_.virtual_dims != nullptr &&
          item.cls == DataClass::Local) {
        auto it = options_.virtual_dims->find(item.name);
        if (it != options_.virtual_dims->end() && d < it->second.size() &&
            it->second[d].is_virtual)
          w = std::min<int64_t>(extent, it->second[d].window);
      }
      window.push_back(w);
    }
    if (record) {
      int64_t field_count = static_cast<int64_t>(item.elem->fields.size());
      lo.push_back(0);
      hi.push_back(field_count - 1);
      window.push_back(field_count);
    }
    arrays_.emplace(item.name,
                    NdArray(std::move(lo), std::move(hi), std::move(window)));
  }

  select_engine();
}

void Interpreter::select_engine() {
  EngineHostOptions host_options;
  host_options.engine = options_.engine;
  host_options.dispatch = options_.dispatch;
  host_options.native_store = options_.native_store;
  host_options.prefer_real_scalars = true;  // real_inputs binds first
  host_.select(module_, arrays_, int_env_, real_inputs_, host_options,
               [this](const BcLayout& layout) {
                 // The whole-module kernel addresses every array at
                 // full extent; windowed (wrapped) storage is outside
                 // its fragment, so virtually windowed runs stay on
                 // the lower tiers.
                 if (options_.use_virtual_windows)
                   throw std::runtime_error(
                       "native: virtual windows need wrapped addressing "
                       "outside the whole-module kernel fragment");
                 NativeEmitOptions emit_options;
                 if (native_engine_simd_enabled())
                   emit_options.simd_pragma = "omp simd";
                 return emit_native_module(module_, layout, graph_,
                                           flowchart_, options_.exact_bounds,
                                           emit_options);
               });
}

void Interpreter::write_scalar(size_t data_index, RtValue value) {
  const DataItem& item = module_.data[data_index];
  scalars_[item.name] = value;
  host_.set_scalar(data_index,
                   value.tag == RtValue::Tag::Int
                       ? value.i
                       : static_cast<int64_t>(value.as_real()),
                   value.as_real());
}

NdArray& Interpreter::array(std::string_view name) {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) fail("no array named '" + std::string(name) + "'");
  return it->second;
}

const NdArray& Interpreter::array(std::string_view name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) fail("no array named '" + std::string(name) + "'");
  return it->second;
}

double Interpreter::scalar(std::string_view name) const {
  auto it = scalars_.find(name);
  if (it == scalars_.end())
    fail("no scalar value for '" + std::string(name) + "'");
  return it->second.as_real();
}

size_t Interpreter::allocated_doubles() const {
  size_t total = 0;
  for (const auto& [name, arr] : arrays_) total += arr.allocation();
  return total;
}

void Interpreter::reset() {
  for (auto& [name, arr] : arrays_) {
    const DataItem* item = module_.find_data(name);
    if (item != nullptr && item->cls != DataClass::Input) arr.fill(0.0);
  }
  for (auto it = scalars_.begin(); it != scalars_.end();) {
    const DataItem* item = module_.find_data(it->first);
    if (item != nullptr && item->cls != DataClass::Input)
      it = scalars_.erase(it);
    else
      ++it;
  }
}

void Interpreter::run() {
  if (host_.native_ready()) {
    run_native_module();
    return;
  }
  Frame frame;
  EvalScratch scratch;
  exec_list(flowchart_, frame, scratch);
}

void Interpreter::run_native_module() {
  // One call executes the whole flowchart in the Interpreter's order;
  // the kernel writes arrays through the shared psc_arr descriptors
  // (pointing straight into arrays_) and scalar targets into the
  // host's ints/reals vectors. When the kernel has a parallel form and
  // a pool is available, psc_module_par hands each DOALL site back to
  // the hook below, which fans psc_module_site slices across the pool
  // (parallel_tasks is the barrier that keeps flowchart order); results
  // are bit-identical because every instance computes the same
  // expression, only partitioned differently.
  const NativeModule& native = *host_.native_module();
  const size_t workers = options_.native_threads > 0 ? options_.native_threads
                         : options_.pool != nullptr  ? options_.pool->size()
                                                     : 1;
  if (native.module_par_entry() != nullptr && options_.pool != nullptr &&
      options_.honor_doall && workers > 1) {
    struct ParDispatch {
      ThreadPool* pool;
      int64_t workers;
      NativeModule::ModuleSiteFn site;
      PscArr* arrs;
      int64_t* ints;
      double* reals;
      const int64_t* params;
    } dispatch{options_.pool,
               static_cast<int64_t>(workers),
               native.module_site_entry(),
               host_.native_arrays(),
               host_.native_ints(),
               host_.native_reals(),
               host_.native_params()};
    auto hook = [](void* ctx, int64_t site, const int64_t* outer,
                   int64_t count) {
      auto* d = static_cast<ParDispatch*>(ctx);
      // Tiny sites are not worth a pool round trip; run them inline as
      // the whole-iteration slice of a single worker.
      if (count < 2 || d->workers < 2) {
        d->site(d->arrs, d->ints, d->reals, d->params, site, outer, 0, 1);
        return;
      }
      const int64_t w = std::min(d->workers, count);
      d->pool->parallel_tasks(w, [&](int64_t i) {
        d->site(d->arrs, d->ints, d->reals, d->params, site, outer, i, w);
      });
    };
    TimedSpan span("native-parallel", "native");
    native.module_par_entry()(dispatch.arrs, dispatch.ints, dispatch.reals,
                              dispatch.params, hook, &dispatch);
    MetricsRegistry::global()
        .histogram("native.parallel_ms")
        .record(span.finish_ms());
  } else {
    NativeModule::ModuleFn fn = native.module_entry();
    fn(host_.native_arrays(), host_.native_ints(), host_.native_reals(),
       host_.native_params());
  }

  // Mirror the scalar-target results back into the scalar map so
  // scalar() observes the same values as the other tiers, typed by the
  // declared kind exactly like the bytecode path's write_scalar.
  const BcLayout& layout = host_.layout();
  for (size_t i = 0; i < module_.data.size(); ++i) {
    const DataItem& item = module_.data[i];
    if (!item.is_scalar() || bc_is_record_item(item)) continue;
    int32_t slot = layout.scalar_slot[i];
    if (slot < 0) continue;
    bool computed = false;
    for (const CheckedEquation& eq : module_.equations)
      if (eq.target == i) computed = true;
    if (!computed) continue;
    int64_t as_int = host_.native_ints()[slot];
    double as_real = host_.native_reals()[slot];
    switch (item.elem->scalar_kind()) {
      case TypeKind::Real:
        scalars_[item.name] = RtValue::of_real(as_real);
        break;
      case TypeKind::Bool:
        scalars_[item.name] = RtValue::of_bool(as_int != 0);
        break;
      default:
        scalars_[item.name] = RtValue::of_int(as_int);
        break;
    }
  }
}

void Interpreter::exec_list(const Flowchart& steps, Frame& frame,
                            EvalScratch& scratch) {
  for (const FlowStep& step : steps) exec_step(step, frame, scratch);
}

void Interpreter::exec_step(const FlowStep& step, Frame& frame,
                            EvalScratch& scratch) {
  if (step.kind == FlowStep::Kind::Equation) {
    exec_equation(step.node, frame, scratch);
    return;
  }
  const LoopLevelBounds* exact =
      options_.exact_bounds == nullptr ? nullptr
                                       : options_.exact_bounds->find(step.var);
  std::optional<int64_t> lo, hi;
  if (exact != nullptr) {
    IntEnv env = env_with_frame(frame);
    lo = exact->lower(env);
    hi = exact->upper(env);
  } else {
    lo = eval_const_int(*step.range->lo, int_env_);
    hi = eval_const_int(*step.range->hi, int_env_);
    if (!lo || !hi)
      fail("cannot evaluate bounds of loop over '" + step.var + "'");
  }
  if (*hi < *lo) return;

  bool parallel = step.loop == LoopKind::Parallel && options_.honor_doall &&
                  options_.pool != nullptr && *hi - *lo >= 1;
  if (!parallel) {
    frame.vars.emplace_back(step.var, 0);
    for (int64_t it = *lo; it <= *hi; ++it) {
      frame.vars.back().second = it;
      exec_list(step.children, frame, scratch);
    }
    frame.vars.pop_back();
    return;
  }

  if (options_.exact_bounds != nullptr) {
    // Non-rectangular bounds: inner extents may depend on outer indices,
    // so the flat-range collapse below does not apply. Instead enumerate
    // the index tuples of the maximal perfectly nested DOALL chain
    // sequentially (bound evaluation is trivially cheap next to the
    // equation bodies) and self-schedule the tuple list on the pool.
    std::vector<const FlowStep*> chain{&step};
    const Flowchart* body = &step.children;
    while (options_.collapse_doall && body->size() == 1 &&
           (*body)[0].kind == FlowStep::Kind::Loop &&
           (*body)[0].loop == LoopKind::Parallel) {
      chain.push_back(&(*body)[0]);
      body = &(*body)[0].children;
    }
    const size_t width = chain.size();
    std::vector<int64_t> tuples;
    {
      IntEnv env = env_with_frame(frame);
      enumerate_levels(chain, 0, env, tuples);
    }
    if (tuples.empty()) return;
    const Flowchart& innermost = *body;
    const int64_t total = static_cast<int64_t>(tuples.size() / width);

    std::exception_ptr error;
    std::mutex error_mutex;
    options_.pool->parallel_for_chunked(
        0, total, [&](int64_t from, int64_t to) {
          try {
            Frame local = frame;  // private index bindings per chunk
            EvalScratch local_scratch;  // private VM scratch per chunk
            size_t base = local.vars.size();
            for (const FlowStep* level : chain)
              local.vars.emplace_back(level->var, 0);
            for (int64_t t = from; t < to; ++t) {
              for (size_t d = 0; d < width; ++d)
                local.vars[base + d].second =
                    tuples[static_cast<size_t>(t) * width + d];
              exec_list(innermost, local, local_scratch);
            }
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) error = std::current_exception();
          }
        });
    if (error) std::rethrow_exception(error);
    return;
  }

  // Collapse a maximal chain of perfectly nested DOALL loops (whose
  // bounds do not depend on the outer indices) into one flat parallel
  // range, so e.g. DOALL I' (DOALL J') over an 8 x 98 hyperplane slab
  // exposes 784-way parallelism rather than 8-way.
  struct Level {
    const FlowStep* loop;
    int64_t lo;
    int64_t extent;
  };
  std::vector<Level> levels{{&step, *lo, *hi - *lo + 1}};
  const Flowchart* body = &step.children;
  while (options_.collapse_doall && body->size() == 1 && (*body)[0].kind == FlowStep::Kind::Loop &&
         (*body)[0].loop == LoopKind::Parallel) {
    const FlowStep& inner = (*body)[0];
    auto ilo = eval_const_int(*inner.range->lo, int_env_);
    auto ihi = eval_const_int(*inner.range->hi, int_env_);
    if (!ilo || !ihi) break;  // bounds depend on an enclosing index
    if (*ihi < *ilo) {
      // The collapsed nest is empty.
      return;
    }
    levels.push_back(Level{&inner, *ilo, *ihi - *ilo + 1});
    body = &inner.children;
  }
  int64_t total = 1;
  for (const Level& level : levels) total *= level.extent;
  const Flowchart& innermost = *body;

  std::exception_ptr error;
  std::mutex error_mutex;
  options_.pool->parallel_for_chunked(
      0, total, [&](int64_t from, int64_t to) {
        try {
          Frame local = frame;  // private index bindings per chunk
          EvalScratch local_scratch;  // private VM scratch per chunk
          size_t base = local.vars.size();
          for (const Level& level : levels)
            local.vars.emplace_back(level.loop->var, 0);
          for (int64_t flat = from; flat < to; ++flat) {
            int64_t rest = flat;
            for (size_t d = levels.size(); d-- > 0;) {
              local.vars[base + d].second =
                  levels[d].lo + rest % levels[d].extent;
              rest /= levels[d].extent;
            }
            exec_list(innermost, local, local_scratch);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      });
  if (error) std::rethrow_exception(error);
}

IntEnv Interpreter::env_with_frame(const Frame& frame) const {
  IntEnv env = int_env_;
  for (const auto& [var, value] : frame.vars) env[std::string(var)] = value;
  return env;
}

void Interpreter::enumerate_levels(const std::vector<const FlowStep*>& chain,
                                   size_t level, IntEnv& env,
                                   std::vector<int64_t>& tuples) const {
  if (level == chain.size()) {
    for (const FlowStep* step : chain)
      tuples.push_back(env.at(step->var));
    return;
  }
  const FlowStep& step = *chain[level];
  const LoopLevelBounds* exact =
      options_.exact_bounds == nullptr ? nullptr
                                       : options_.exact_bounds->find(step.var);
  int64_t lo = 0;
  int64_t hi = -1;
  if (exact != nullptr) {
    lo = exact->lower(env);
    hi = exact->upper(env);
  } else {
    auto rlo = eval_const_int(*step.range->lo, int_env_);
    auto rhi = eval_const_int(*step.range->hi, int_env_);
    if (!rlo || !rhi)
      fail("cannot evaluate bounds of loop over '" + step.var + "'");
    lo = *rlo;
    hi = *rhi;
  }
  for (int64_t it = lo; it <= hi; ++it) {
    env[step.var] = it;
    enumerate_levels(chain, level + 1, env, tuples);
  }
  env.erase(step.var);
}

void Interpreter::exec_equation(uint32_t node, Frame& frame,
                                EvalScratch& scratch) {
  const CheckedEquation& eq = graph_.equation_of(graph_.node(node));
  const DataItem& target = module_.data[eq.target];

  if (host_.bytecode_ready()) {
    if (target.is_scalar() && !bc_is_record_item(target)) {
      const BcProgram& rhs = host_.core().programs(eq.id).rhs;
      EvalSlot result = host_.core().run(rhs, frame, scratch);
      write_scalar(eq.target, rhs.result_real ? RtValue::of_real(result.d)
                                              : RtValue::of_int(result.i));
    } else {
      // Array and record targets (a rank-0 record is a 1-d array over
      // its fields) both store through the core.
      host_.core().eval_store(eq, frame, scratch);
    }
    return;
  }

  // Fixed LHS subscripts may be real-valued: convert through the same
  // defined truncation as the bytecode VM's lhs_index, so all tiers
  // agree even on NaN/out-of-range values.
  auto fixed_index = [&](const Expr& e) {
    RtValue v = eval(e, frame);
    if (v.tag == RtValue::Tag::Bool)
      fail(eq.display_name + ": boolean used as a subscript");
    return v.tag == RtValue::Tag::Real ? bc_double_to_int64(v.d) : v.i;
  };

  if (bc_is_record_item(target)) {
    // Record-target store: one write per field, the ordinal appended as
    // the trailing subscript -- the order the VM's field programs run.
    std::vector<int64_t> idx;
    idx.reserve(eq.lhs_subs.size() + 1);
    for (const LhsSubscript& sub : eq.lhs_subs) {
      if (sub.is_index_var) {
        const int64_t* v = frame.find(sub.var);
        if (v == nullptr)
          fail(eq.display_name + ": unbound index variable '" + sub.var +
               "'");
        idx.push_back(*v);
      } else {
        idx.push_back(fixed_index(*sub.fixed));
      }
    }
    NdArray& arr = arrays_.find(target.name)->second;
    idx.push_back(0);
    for (size_t f = 0; f < target.elem->fields.size(); ++f) {
      idx.back() = static_cast<int64_t>(f);
      double value = eval_field_store(*eq.rhs, f, frame);
      if (!arr.in_bounds(idx))
        fail(eq.display_name + ": write outside the bounds of '" +
             target.name + "'");
      arr.set(idx, value);
    }
    return;
  }

  RtValue value = eval(*eq.rhs, frame);

  if (target.is_scalar()) {
    write_scalar(eq.target, value);
    return;
  }

  std::vector<int64_t> idx;
  idx.reserve(eq.lhs_subs.size());
  for (const LhsSubscript& sub : eq.lhs_subs) {
    if (sub.is_index_var) {
      const int64_t* v = frame.find(sub.var);
      if (v == nullptr)
        fail(eq.display_name + ": unbound index variable '" + sub.var + "'");
      idx.push_back(*v);
    } else {
      idx.push_back(fixed_index(*sub.fixed));
    }
  }
  NdArray& arr = arrays_.find(target.name)->second;
  if (!arr.in_bounds(idx))
    fail(eq.display_name + ": write outside the bounds of '" + target.name +
         "'");
  arr.set(idx, value.as_real());
}

int64_t Interpreter::eval_int(const Expr& e, const Frame& frame) {
  RtValue v = eval(e, frame);
  switch (v.tag) {
    case RtValue::Tag::Int:
      return v.i;
    case RtValue::Tag::Real: {
      double r = std::round(v.d);
      if (r != v.d) fail("non-integer subscript value");
      return static_cast<int64_t>(r);
    }
    case RtValue::Tag::Bool:
      fail("boolean used as integer");
  }
  return 0;
}

Interpreter::RtValue Interpreter::eval(const Expr& e, const Frame& frame) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return RtValue::of_int(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::RealLit:
      return RtValue::of_real(static_cast<const RealLitExpr&>(e).value);
    case ExprKind::BoolLit:
      return RtValue::of_bool(static_cast<const BoolLitExpr&>(e).value);
    case ExprKind::Name: {
      const auto& name = static_cast<const NameExpr&>(e).name;
      if (const int64_t* v = frame.find(name)) return RtValue::of_int(*v);
      auto sc = scalars_.find(name);
      if (sc != scalars_.end()) return sc->second;
      auto en = enum_consts_.find(name);
      if (en != enum_consts_.end()) return RtValue::of_int(en->second);
      const DataItem* item = module_.find_data(name);
      if (item != nullptr && bc_is_record_item(*item))
        fail("record value outside a field projection");
      fail("no value for name '" + name + "'");
    }
    case ExprKind::Index: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      if (ix.base->kind != ExprKind::Name)
        fail("unsupported subscripted expression");
      const auto& name = static_cast<const NameExpr&>(*ix.base).name;
      auto it = arrays_.find(name);
      if (it == arrays_.end()) fail("no array named '" + name + "'");
      std::vector<int64_t> idx;
      idx.reserve(ix.subs.size());
      for (const auto& sub : ix.subs) idx.push_back(eval_int(*sub, frame));
      if (!it->second.in_bounds(idx))
        fail("read outside the bounds of '" + name + "'");
      const DataItem* item = module_.find_data(name);
      if (item != nullptr && bc_is_record_item(*item))
        fail("record value outside a field projection");
      double v = it->second.at(idx);
      if (item != nullptr && item->elem->scalar_kind() == TypeKind::Int)
        return RtValue::of_int(static_cast<int64_t>(v));
      return RtValue::of_real(v);
    }
    case ExprKind::Field: {
      const auto& f = static_cast<const FieldExpr&>(e);
      return eval_field(*f.base, f.field, frame);
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      RtValue v = eval(*u.operand, frame);
      if (u.op == UnaryOp::Neg) {
        if (v.tag == RtValue::Tag::Int) return RtValue::of_int(-v.i);
        return RtValue::of_real(-v.as_real());
      }
      return RtValue::of_bool(!v.b);
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinaryOp::And: {
          RtValue l = eval(*b.lhs, frame);
          if (!l.b) return RtValue::of_bool(false);
          return eval(*b.rhs, frame);
        }
        case BinaryOp::Or: {
          RtValue l = eval(*b.lhs, frame);
          if (l.b) return RtValue::of_bool(true);
          return eval(*b.rhs, frame);
        }
        default:
          break;
      }
      RtValue l = eval(*b.lhs, frame);
      RtValue r = eval(*b.rhs, frame);
      bool both_int =
          l.tag == RtValue::Tag::Int && r.tag == RtValue::Tag::Int;
      switch (b.op) {
        case BinaryOp::Add:
          return both_int ? RtValue::of_int(l.i + r.i)
                          : RtValue::of_real(l.as_real() + r.as_real());
        case BinaryOp::Sub:
          return both_int ? RtValue::of_int(l.i - r.i)
                          : RtValue::of_real(l.as_real() - r.as_real());
        case BinaryOp::Mul:
          return both_int ? RtValue::of_int(l.i * r.i)
                          : RtValue::of_real(l.as_real() * r.as_real());
        case BinaryOp::Div:
          return RtValue::of_real(l.as_real() / r.as_real());
        case BinaryOp::IntDiv:
          if (!both_int || r.i == 0) fail("bad 'div' operands");
          return RtValue::of_int(l.i / r.i);
        case BinaryOp::Mod:
          if (!both_int || r.i == 0) fail("bad 'mod' operands");
          return RtValue::of_int(l.i % r.i);
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
          if (both_int) {
            switch (b.op) {
              case BinaryOp::Eq: return RtValue::of_bool(l.i == r.i);
              case BinaryOp::Ne: return RtValue::of_bool(l.i != r.i);
              case BinaryOp::Lt: return RtValue::of_bool(l.i < r.i);
              case BinaryOp::Le: return RtValue::of_bool(l.i <= r.i);
              case BinaryOp::Gt: return RtValue::of_bool(l.i > r.i);
              default: return RtValue::of_bool(l.i >= r.i);
            }
          }
          double a = l.as_real();
          double c = r.as_real();
          switch (b.op) {
            case BinaryOp::Eq: return RtValue::of_bool(a == c);
            case BinaryOp::Ne: return RtValue::of_bool(a != c);
            case BinaryOp::Lt: return RtValue::of_bool(a < c);
            case BinaryOp::Le: return RtValue::of_bool(a <= c);
            case BinaryOp::Gt: return RtValue::of_bool(a > c);
            default: return RtValue::of_bool(a >= c);
          }
        }
        default:
          fail("unsupported binary operator");
      }
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      RtValue c = eval(*i.cond, frame);
      return eval(c.b ? *i.then_expr : *i.else_expr, frame);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      auto arg = [&](size_t k) { return eval(*c.args[k], frame); };
      if (c.callee == "abs") {
        RtValue v = arg(0);
        if (v.tag == RtValue::Tag::Int)
          return RtValue::of_int(v.i < 0 ? -v.i : v.i);
        return RtValue::of_real(std::fabs(v.as_real()));
      }
      if (c.callee == "min" || c.callee == "max") {
        RtValue a = arg(0);
        RtValue b = arg(1);
        bool both_int =
            a.tag == RtValue::Tag::Int && b.tag == RtValue::Tag::Int;
        bool take_min = c.callee == "min";
        if (both_int)
          return RtValue::of_int(take_min ? std::min(a.i, b.i)
                                          : std::max(a.i, b.i));
        return RtValue::of_real(take_min
                                    ? std::min(a.as_real(), b.as_real())
                                    : std::max(a.as_real(), b.as_real()));
      }
      if (c.callee == "sqrt") return RtValue::of_real(std::sqrt(arg(0).as_real()));
      if (c.callee == "sin") return RtValue::of_real(std::sin(arg(0).as_real()));
      if (c.callee == "cos") return RtValue::of_real(std::cos(arg(0).as_real()));
      if (c.callee == "exp") return RtValue::of_real(std::exp(arg(0).as_real()));
      if (c.callee == "ln") return RtValue::of_real(std::log(arg(0).as_real()));
      // Through the same defined conversion as the bytecode VM, so the
      // engines agree even on NaN/out-of-range arguments.
      if (c.callee == "floor")
        return RtValue::of_int(bc_double_to_int64(std::floor(arg(0).as_real())));
      if (c.callee == "ceil")
        return RtValue::of_int(bc_double_to_int64(std::ceil(arg(0).as_real())));
      fail("unknown intrinsic '" + c.callee + "'");
    }
  }
  fail("unreachable expression kind");
}

const DataItem& Interpreter::record_base(const Expr& base, const Frame& frame,
                                         std::vector<int64_t>& idx) {
  const NameExpr* name = nullptr;
  if (base.kind == ExprKind::Name) {
    name = &static_cast<const NameExpr&>(base);
  } else if (base.kind == ExprKind::Index) {
    const auto& ix = static_cast<const IndexExpr&>(base);
    if (ix.base->kind != ExprKind::Name)
      fail("unsupported record base expression");
    name = &static_cast<const NameExpr&>(*ix.base);
    idx.reserve(ix.subs.size() + 1);
    for (const auto& sub : ix.subs) idx.push_back(eval_int(*sub, frame));
  } else {
    fail("unsupported record base expression");
  }
  const DataItem* item = module_.find_data(name->name);
  if (item == nullptr || !bc_is_record_item(*item) ||
      item->rank() != idx.size())
    fail("bad record reference to '" + name->name + "'");
  return *item;
}

Interpreter::RtValue Interpreter::eval_field(const Expr& base,
                                             std::string_view field,
                                             const Frame& frame) {
  if (base.kind == ExprKind::If) {
    const auto& i = static_cast<const IfExpr&>(base);
    RtValue c = eval(*i.cond, frame);
    return eval_field(c.b ? *i.then_expr : *i.else_expr, field, frame);
  }
  std::vector<int64_t> idx;
  const DataItem& item = record_base(base, frame, idx);
  int64_t ordinal = bc_record_field_ordinal(*item.elem, field);
  if (ordinal < 0)
    fail("record '" + item.name + "' has no field '" + std::string(field) +
         "'");
  idx.push_back(ordinal);
  NdArray& arr = arrays_.find(item.name)->second;
  if (!arr.in_bounds(idx))
    fail("read outside the bounds of '" + item.name + "'");
  double v = arr.at(idx);
  // Field loads mirror the VM's trailing-subscript LoadArray: real
  // fields as-is, int/bool fields through the integer view (the same
  // truncation as int-element arrays).
  const Type* ftype = item.elem->fields[static_cast<size_t>(ordinal)].second;
  switch (ftype->scalar_kind()) {
    case TypeKind::Real:
      return RtValue::of_real(v);
    case TypeKind::Bool:
      return RtValue::of_bool(static_cast<int64_t>(v) != 0);
    default:
      return RtValue::of_int(static_cast<int64_t>(v));
  }
}

double Interpreter::eval_field_store(const Expr& e, size_t ordinal,
                                     const Frame& frame) {
  if (e.kind == ExprKind::If) {
    const auto& i = static_cast<const IfExpr&>(e);
    RtValue c = eval(*i.cond, frame);
    return eval_field_store(c.b ? *i.then_expr : *i.else_expr, ordinal, frame);
  }
  std::vector<int64_t> idx;
  const DataItem& item = record_base(e, frame, idx);
  if (ordinal >= item.elem->fields.size())
    fail("record field ordinal out of range");
  idx.push_back(static_cast<int64_t>(ordinal));
  NdArray& arr = arrays_.find(item.name)->second;
  if (!arr.in_bounds(idx))
    fail("read outside the bounds of '" + item.name + "'");
  double v = arr.at(idx);
  const Type* ftype = item.elem->fields[ordinal].second;
  // Stored exactly as the VM's field programs produce the value: real
  // fields pass through, int/bool fields round-trip the integer view.
  if (ftype->scalar_kind() == TypeKind::Real) return v;
  return static_cast<double>(static_cast<int64_t>(v));
}

}  // namespace ps
