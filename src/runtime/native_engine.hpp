#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/native_emitter.hpp"

namespace ps {

/// Host-side mirror of the generated code's `psc_arr` (see
/// codegen/native_emitter.hpp). LP64 makes `const long*` and
/// `const int64_t*` the same pointer type inside the kernel.
struct PscArr {
  double* data = nullptr;
  const int64_t* lo = nullptr;
  const int64_t* win = nullptr;
  const int64_t* stride = nullptr;
};

/// Where compiled shared objects persist between sessions. ArtifactCache
/// implements this (a `<key>.so` file next to the `<key>.art` text
/// artifacts); a null store means compile-and-load without persistence.
class NativeObjectStore {
 public:
  virtual ~NativeObjectStore() = default;

  /// Path of a previously published object for `key`, if still cached.
  [[nodiscard]] virtual std::optional<std::filesystem::path> native_lookup(
      const std::string& key) = 0;

  /// Persist `so_bytes` under `key`; returns the published path (the
  /// engine dlopens the published copy so eviction pinning sees it).
  [[nodiscard]] virtual std::optional<std::filesystem::path> native_publish(
      const std::string& key, const std::string& so_bytes) = 0;

  /// Drop a cached object that failed to load (corrupt / wrong arch).
  virtual void native_discard(const std::string& key) = 0;
};

/// How a native module was obtained, for WavefrontStats / --verbose /
/// the benches.
struct NativeLoadInfo {
  bool ok = false;
  /// The .so came out of the NativeObjectStore; `cc` was not invoked.
  bool cache_hit = false;
  /// The module object was still alive in this process (no dlopen either).
  bool in_process_hit = false;
  double compile_ms = 0.0;
  std::string key;
  std::string so_path;
  std::string error;
};

/// A loaded native kernel module: the dlopen handle plus resolved entry
/// points. Shared by every runner executing the same module; the pin
/// registry keeps cache eviction from unlinking the backing .so while
/// any instance is alive (ISSUE 6 satellite: evict under a running
/// wavefront must not pull the code out from under it).
class NativeModule {
 public:
  using StripeFn = int64_t (*)(PscArr*, const int64_t*, const double*,
                               const int64_t*, int64_t, int64_t, int64_t);
  using EquationFn = void (*)(PscArr*, const int64_t*, const double*,
                              const int64_t*);
  /// Whole-module kernel (emit_native_module): ints/reals mutable so
  /// scalar-target equations update both interpretations mid-run.
  using ModuleFn = void (*)(PscArr*, int64_t*, double*, const int64_t*);
  /// Parallel whole-module form: psc_module_par calls the hook at every
  /// DOALL dispatch site (the hook runs psc_module_site once per worker
  /// and must not return until all complete -- the barrier), site args
  /// are {site id, enclosing DO indices, worker, nworkers}.
  using ModuleParHookFn = void (*)(void*, int64_t, const int64_t*, int64_t);
  using ModuleParFn = void (*)(PscArr*, int64_t*, double*, const int64_t*,
                               ModuleParHookFn, void*);
  using ModuleSiteFn = void (*)(PscArr*, int64_t*, double*, const int64_t*,
                                int64_t, const int64_t*, int64_t, int64_t);

  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  [[nodiscard]] StripeFn stripe() const { return stripe_; }
  [[nodiscard]] EquationFn equation(size_t id) const {
    auto it = equations_.find(id);
    return it == equations_.end() ? nullptr : it->second;
  }
  [[nodiscard]] ModuleFn module_entry() const { return module_; }
  [[nodiscard]] ModuleParFn module_par_entry() const { return module_par_; }
  [[nodiscard]] ModuleSiteFn module_site_entry() const { return module_site_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  friend class NativeModuleLoader;

  NativeModule(void* handle, std::string path);

  void* handle_ = nullptr;
  std::string path_;
  StripeFn stripe_ = nullptr;
  ModuleFn module_ = nullptr;
  ModuleParFn module_par_ = nullptr;
  ModuleSiteFn module_site_ = nullptr;
  std::map<size_t, EquationFn> equations_;
};

/// True when the native tier can run at all: compiled in
/// (PS_NATIVE_ENGINE) and a working `cc` answers the probe. The probe
/// result is cached per compiler command.
[[nodiscard]] bool native_engine_available();

/// Human-readable reason when native_engine_available() is false.
[[nodiscard]] std::string native_engine_unavailable_reason();

/// First line of `cc --version` plus the effective compile flags --
/// part of the cache key, so a toolchain upgrade or flag change
/// (including the probed -fopenmp-simd) invalidates cached objects
/// instead of loading stale code.
[[nodiscard]] std::string native_cc_fingerprint();

/// True when the compiler accepts -fopenmp-simd (probed once per
/// compiler command, like the availability probe): kernels are then
/// compiled with the flag and may carry "#pragma omp simd" on innermost
/// DOALL loops (NativeEmitOptions::simd_pragma).
[[nodiscard]] bool native_engine_simd_enabled();

/// Content key of a kernel: SHA-256 over the ABI tag, the compiler
/// fingerprint and the generated C.
[[nodiscard]] std::string native_kernel_key(const std::string& c_source);

/// Process-wide count of actual `cc` invocations; the warm-cache tests
/// and benches assert this does not move on a hit.
[[nodiscard]] int64_t native_cc_invocations();

/// Human-readable decode of a std::system()/wait(2) status: "exit N",
/// "killed by signal N", or "could not spawn shell" for -1. The native
/// tier's cc failures are reported through this (a compiler exiting 1
/// used to be surfaced as the raw wait status 256).
[[nodiscard]] std::string native_describe_wait_status(int status);

/// True when `path` backs a currently loaded NativeModule. ArtifactCache
/// eviction skips such objects.
[[nodiscard]] bool native_object_in_use(const std::filesystem::path& path);

/// Compile (or re-load) `kernel` and resolve its entry points. Order:
/// in-process module cache -> store lookup -> compile with `cc`,
/// publishing through `store` when given. Returns nullptr with
/// info.error set on failure; never throws.
[[nodiscard]] std::shared_ptr<NativeModule> load_native_module(
    const NativeKernel& kernel, NativeObjectStore* store,
    NativeLoadInfo& info);

/// Test/bench hooks. clear_in_process_cache drops the process-local
/// module cache's retained references (unpinning any .so no live runner
/// still uses), so the next load goes back to the store or `cc`;
/// set_compiler overrides the `cc` command ("" restores the default,
/// "false" is a convenient always-failing compiler for fallback tests).
void native_engine_clear_in_process_cache();
void native_engine_set_compiler(const std::string& command);

}  // namespace ps
