#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ps {

/// A fixed-size worker pool executing chunked parallel-for loops. This is
/// the MIMD substrate the paper's DOALL annotations target: one
/// parallel_for call per DOALL loop instance, with dynamic chunk
/// self-scheduling so irregular bodies (wavefront guards) balance.
///
/// The calling thread participates in the work, so a pool of size 1
/// degenerates to a plain sequential loop with no synchronisation cost
/// beyond two atomic operations.
class ThreadPool {
 public:
  /// Create `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  [[nodiscard]] size_t size() const { return workers_.size() + 1; }

  /// Run `body(i)` for every i in [begin, end). Blocks until all
  /// iterations complete. Safe to call from one thread at a time; nested
  /// calls from inside a body run sequentially inline.
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t)>& body);

  /// Chunked variant: `body(chunk_begin, chunk_end)`.
  void parallel_for_chunked(int64_t begin, int64_t end,
                            const std::function<void(int64_t, int64_t)>& body);

  /// Coarse-task variant: like parallel_for but with the chunk size
  /// pinned to 1, so every index is claimed individually from the shared
  /// work queue. Use for heavyweight, unevenly sized tasks (one
  /// compilation unit each) where batching several behind one claim
  /// would serialise a long task behind short ones.
  void parallel_tasks(int64_t count, const std::function<void(int64_t)>& body);

  /// A process-wide pool sized to the hardware.
  static ThreadPool& global();

  /// Lifetime count of worker threads that woke up to join a batch.
  /// Regression guard for the wake policy: dispatching a batch of k
  /// chunks must wake at most min(workers, k - 1) workers, and an empty
  /// batch must wake none.
  [[nodiscard]] uint64_t worker_wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  struct Batch {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t chunk = 1;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    std::atomic<int64_t> next{0};
    std::atomic<size_t> active{0};
  };

  void worker_loop();
  void work_on(Batch& batch);
  void run_batch(int64_t begin, int64_t end, int64_t chunk,
                 const std::function<void(int64_t, int64_t)>& body);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Batch* current_ = nullptr;
  uint64_t generation_ = 0;
  bool stopping_ = false;
  bool in_parallel_ = false;
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace ps
