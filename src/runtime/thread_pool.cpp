#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace ps {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 4 : hw;
  }
  // The caller is one of the `threads` lanes.
  size_t workers = threads > 0 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stopping_ || (current_ != nullptr && generation_ != seen);
      });
      if (stopping_) return;
      seen = generation_;
      batch = current_;
      batch->active.fetch_add(1, std::memory_order_relaxed);
      wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
    work_on(*batch);
    if (batch->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // The lock pairs this notification with the caller's done_ wait:
      // without it the notify can land in the window between the
      // caller's predicate evaluation (which still saw active == 1) and
      // its atomic unlock-and-sleep -- a lost wakeup that leaves the
      // caller blocked forever on an already-finished batch.
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

void ThreadPool::work_on(Batch& batch) {
  while (true) {
    int64_t from = batch.next.fetch_add(batch.chunk, std::memory_order_relaxed);
    if (from >= batch.end) return;
    int64_t to = std::min(batch.end, from + batch.chunk);
    (*batch.body)(from, to);
  }
}

void ThreadPool::run_batch(int64_t begin, int64_t end, int64_t chunk,
                           const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  int64_t n = end - begin;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (in_parallel_ || workers_.empty() || n == 1) {
      lock.unlock();
      body(begin, end);  // nested or trivial: run inline
      return;
    }
    in_parallel_ = true;
  }

  Batch batch;
  batch.begin = begin;
  batch.end = end;
  batch.chunk = chunk;
  batch.body = &body;
  batch.next.store(begin, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &batch;
    ++generation_;
  }
  // Wake only as many workers as there are chunks beyond the one the
  // caller claims itself; notify_all on a 2-chunk batch would stampede
  // the whole pool through the mutex just to find the queue drained.
  // A missed wake cannot strand work: the caller alone can drain the
  // batch, and workers re-check the predicate before sleeping.
  const int64_t chunks = (n + chunk - 1) / chunk;
  const size_t wakes =
      std::min(workers_.size(), static_cast<size_t>(chunks - 1));
  for (size_t i = 0; i < wakes; ++i) wake_.notify_one();

  work_on(batch);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return batch.active.load(std::memory_order_acquire) == 0 &&
             batch.next.load(std::memory_order_relaxed) >= batch.end;
    });
    current_ = nullptr;
    in_parallel_ = false;
  }
}

void ThreadPool::parallel_for_chunked(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  // Aim for ~4 chunks per lane so dynamic self-scheduling can balance.
  int64_t n = end - begin;
  int64_t lanes = static_cast<int64_t>(size());
  run_batch(begin, end, std::max<int64_t>(1, n / (lanes * 4)), body);
}

void ThreadPool::parallel_for(int64_t begin, int64_t end,
                              const std::function<void(int64_t)>& body) {
  parallel_for_chunked(begin, end, [&](int64_t from, int64_t to) {
    for (int64_t i = from; i < to; ++i) body(i);
  });
}

void ThreadPool::parallel_tasks(int64_t count,
                                const std::function<void(int64_t)>& body) {
  // Warm-service callers probe with empty task lists; bail before
  // touching the pool at all rather than waking workers for nothing.
  if (count <= 0) return;
  run_batch(0, count, 1, [&](int64_t from, int64_t to) {
    for (int64_t i = from; i < to; ++i) body(i);
  });
}

}  // namespace ps
