#include "runtime/eval_core.hpp"

#include <cmath>
#include <stdexcept>

namespace ps {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("eval: " + message);
}

}  // namespace

void EvalCore::compile(const CheckedModule& module) {
  module_ = &module;
  layout_ = BcLayout::for_module(module);
  array_table_.assign(static_cast<size_t>(layout_.array_count), nullptr);
  scalar_i_.assign(static_cast<size_t>(layout_.scalar_count), 0);
  scalar_d_.assign(static_cast<size_t>(layout_.scalar_count), 0.0);

  programs_.clear();
  programs_.reserve(module.equations.size());
  for (const CheckedEquation& eq : module.equations) {
    EquationPrograms programs;
    programs.rhs = compile_expr(*eq.rhs, module, layout_);
    fold_constants(programs.rhs);
    for (const LhsSubscript& sub : eq.lhs_subs) {
      if (sub.is_index_var) {
        programs.lhs_fixed.push_back(nullptr);
      } else {
        auto fixed = std::make_unique<BcProgram>(
            compile_expr(*sub.fixed, module, layout_));
        fold_constants(*fixed);
        programs.lhs_fixed.push_back(std::move(fixed));
      }
    }
    programs_.push_back(std::move(programs));
  }
}

void EvalCore::bind_arrays(
    std::map<std::string, NdArray, std::less<>>& arrays) {
  for (size_t i = 0; i < module_->data.size(); ++i) {
    if (layout_.array_slot[i] < 0) continue;
    auto it = arrays.find(module_->data[i].name);
    if (it == arrays.end())
      fail("no storage bound for array '" + module_->data[i].name + "'");
    array_table_[static_cast<size_t>(layout_.array_slot[i])] = &it->second;
  }
}

void EvalCore::set_scalar(size_t data_index, int64_t as_int, double as_real) {
  if (layout_.scalar_slot.empty() || layout_.scalar_slot[data_index] < 0)
    return;
  size_t slot = static_cast<size_t>(layout_.scalar_slot[data_index]);
  scalar_i_[slot] = as_int;
  scalar_d_[slot] = as_real;
}

bool EvalCore::scalar_referenced(size_t data_index) const {
  if (layout_.scalar_slot.empty() || layout_.scalar_slot[data_index] < 0)
    return false;
  int32_t slot = layout_.scalar_slot[data_index];
  auto reads = [&](const BcProgram& p) {
    for (const BcInstr& instr : p.code)
      if ((instr.op == BcOp::LoadScalarI || instr.op == BcOp::LoadScalarD) &&
          instr.a == slot)
        return true;
    return false;
  };
  for (const EquationPrograms& programs : programs_) {
    if (reads(programs.rhs)) return true;
    for (const auto& lhs : programs.lhs_fixed)
      if (lhs != nullptr && reads(*lhs)) return true;
  }
  return false;
}

bool EvalCore::within_run_limits() const {
  for (const EquationPrograms& programs : programs_) {
    if (programs.rhs.var_names.size() > kMaxVars) return false;
    for (const auto& lhs : programs.lhs_fixed)
      if (lhs != nullptr && lhs->var_names.size() > kMaxVars) return false;
  }
  return true;
}

EvalSlot EvalCore::run(const BcProgram& p, const VarFrame& frame) const {
  thread_local std::vector<EvalSlot> stack;
  thread_local std::vector<int64_t> idx;
  stack.clear();
  if (stack.capacity() < p.max_stack + 4) stack.reserve(p.max_stack + 4);

  int64_t vars[kMaxVars];
  if (p.var_names.size() > kMaxVars)
    fail("loop nest deeper than the bytecode engine supports");
  for (size_t v = 0; v < p.var_names.size(); ++v) {
    const int64_t* value = frame.find(p.var_names[v]);
    if (value == nullptr)
      fail("unbound index variable '" + p.var_names[v] + "'");
    vars[v] = *value;
  }

  auto push_i = [&](int64_t v) {
    EvalSlot s;
    s.i = v;
    stack.push_back(s);
  };
  auto push_d = [&](double v) {
    EvalSlot s;
    s.d = v;
    stack.push_back(s);
  };
  auto pop = [&]() {
    EvalSlot s = stack.back();
    stack.pop_back();
    return s;
  };

  size_t pc = 0;
  while (true) {
    const BcInstr& instr = p.code[pc];
    switch (instr.op) {
      case BcOp::PushInt: push_i(instr.imm); break;
      case BcOp::PushReal: push_d(instr.dimm); break;
      case BcOp::LoadVar: push_i(vars[static_cast<size_t>(instr.a)]); break;
      case BcOp::LoadScalarI:
        push_i(scalar_i_[static_cast<size_t>(instr.a)]);
        break;
      case BcOp::LoadScalarD:
        push_d(scalar_d_[static_cast<size_t>(instr.a)]);
        break;
      case BcOp::LoadArrayI:
      case BcOp::LoadArrayD: {
        size_t rank = static_cast<size_t>(instr.b);
        idx.resize(rank);
        for (size_t d = rank; d-- > 0;) idx[d] = pop().i;
        NdArray* arr = array_table_[static_cast<size_t>(instr.a)];
        if (!arr->in_bounds(idx)) fail("read outside array bounds");
        double v = arr->at(idx);
        if (instr.op == BcOp::LoadArrayD)
          push_d(v);
        else
          push_i(static_cast<int64_t>(v));
        break;
      }
      case BcOp::IntToReal: {
        EvalSlot s = pop();
        push_d(static_cast<double>(s.i));
        break;
      }
#define PS_BIN_I(OP, EXPR)     \
  case BcOp::OP: {             \
    int64_t rhs = pop().i;     \
    int64_t lhs = pop().i;     \
    push_i(EXPR);              \
    break;                     \
  }
#define PS_BIN_D(OP, EXPR)     \
  case BcOp::OP: {             \
    double rhs = pop().d;      \
    double lhs = pop().d;      \
    push_d(EXPR);              \
    break;                     \
  }
#define PS_CMP_D(OP, EXPR)     \
  case BcOp::OP: {             \
    double rhs = pop().d;      \
    double lhs = pop().d;      \
    push_i(EXPR);              \
    break;                     \
  }
      PS_BIN_I(AddI, lhs + rhs)
      PS_BIN_I(SubI, lhs - rhs)
      PS_BIN_I(MulI, lhs * rhs)
      case BcOp::DivI: {
        int64_t rhs = pop().i;
        int64_t lhs = pop().i;
        if (rhs == 0) fail("'div' by zero");
        push_i(lhs / rhs);
        break;
      }
      case BcOp::ModI: {
        int64_t rhs = pop().i;
        int64_t lhs = pop().i;
        if (rhs == 0) fail("'mod' by zero");
        push_i(lhs % rhs);
        break;
      }
      case BcOp::NegI: stack.back().i = -stack.back().i; break;
      PS_BIN_D(AddD, lhs + rhs)
      PS_BIN_D(SubD, lhs - rhs)
      PS_BIN_D(MulD, lhs * rhs)
      PS_BIN_D(DivD, lhs / rhs)
      case BcOp::NegD: stack.back().d = -stack.back().d; break;
      PS_BIN_I(CmpEqI, lhs == rhs ? 1 : 0)
      PS_BIN_I(CmpNeI, lhs != rhs ? 1 : 0)
      PS_BIN_I(CmpLtI, lhs < rhs ? 1 : 0)
      PS_BIN_I(CmpLeI, lhs <= rhs ? 1 : 0)
      PS_BIN_I(CmpGtI, lhs > rhs ? 1 : 0)
      PS_BIN_I(CmpGeI, lhs >= rhs ? 1 : 0)
      PS_CMP_D(CmpEqD, lhs == rhs ? 1 : 0)
      PS_CMP_D(CmpNeD, lhs != rhs ? 1 : 0)
      PS_CMP_D(CmpLtD, lhs < rhs ? 1 : 0)
      PS_CMP_D(CmpLeD, lhs <= rhs ? 1 : 0)
      PS_CMP_D(CmpGtD, lhs > rhs ? 1 : 0)
      PS_CMP_D(CmpGeD, lhs >= rhs ? 1 : 0)
#undef PS_BIN_I
#undef PS_BIN_D
#undef PS_CMP_D
      case BcOp::NotB:
        stack.back().i = stack.back().i == 0 ? 1 : 0;
        break;
      case BcOp::JumpIfFalse: {
        int64_t cond = pop().i;
        if (cond == 0) {
          pc = static_cast<size_t>(instr.a);
          continue;
        }
        break;
      }
      case BcOp::Jump:
        pc = static_cast<size_t>(instr.a);
        continue;
      case BcOp::AbsI:
        stack.back().i = stack.back().i < 0 ? -stack.back().i : stack.back().i;
        break;
      case BcOp::AbsD: stack.back().d = std::fabs(stack.back().d); break;
      case BcOp::MinI: {
        int64_t rhs = pop().i;
        stack.back().i = std::min(stack.back().i, rhs);
        break;
      }
      case BcOp::MaxI: {
        int64_t rhs = pop().i;
        stack.back().i = std::max(stack.back().i, rhs);
        break;
      }
      case BcOp::MinD: {
        double rhs = pop().d;
        stack.back().d = std::min(stack.back().d, rhs);
        break;
      }
      case BcOp::MaxD: {
        double rhs = pop().d;
        stack.back().d = std::max(stack.back().d, rhs);
        break;
      }
      case BcOp::Sqrt: stack.back().d = std::sqrt(stack.back().d); break;
      case BcOp::Sin: stack.back().d = std::sin(stack.back().d); break;
      case BcOp::Cos: stack.back().d = std::cos(stack.back().d); break;
      case BcOp::Exp: stack.back().d = std::exp(stack.back().d); break;
      case BcOp::Ln: stack.back().d = std::log(stack.back().d); break;
      case BcOp::FloorD: {
        double v = pop().d;
        push_i(static_cast<int64_t>(std::floor(v)));
        break;
      }
      case BcOp::CeilD: {
        double v = pop().d;
        push_i(static_cast<int64_t>(std::ceil(v)));
        break;
      }
      case BcOp::Halt:
        return stack.back();
    }
    ++pc;
  }
}

double EvalCore::eval_rhs_real(const CheckedEquation& eq,
                               const VarFrame& frame) const {
  const BcProgram& rhs = programs_[eq.id].rhs;
  EvalSlot result = run(rhs, frame);
  return rhs.result_real ? result.d : static_cast<double>(result.i);
}

void EvalCore::lhs_index(const CheckedEquation& eq, const VarFrame& frame,
                         std::vector<int64_t>& idx) const {
  const EquationPrograms& programs = programs_[eq.id];
  idx.clear();
  idx.reserve(eq.lhs_subs.size());
  for (size_t p = 0; p < eq.lhs_subs.size(); ++p) {
    const LhsSubscript& sub = eq.lhs_subs[p];
    if (sub.is_index_var) {
      const int64_t* v = frame.find(sub.var);
      if (v == nullptr)
        fail(eq.display_name + ": unbound index variable '" + sub.var + "'");
      idx.push_back(*v);
    } else {
      EvalSlot s = run(*programs.lhs_fixed[p], frame);
      idx.push_back(programs.lhs_fixed[p]->result_real
                        ? static_cast<int64_t>(s.d)
                        : s.i);
    }
  }
}

void EvalCore::eval_store(const CheckedEquation& eq,
                          const VarFrame& frame) const {
  double value = eval_rhs_real(eq, frame);
  thread_local std::vector<int64_t> idx;
  lhs_index(eq, frame, idx);
  const DataItem& target = module_->data[eq.target];
  if (layout_.array_slot[eq.target] < 0)
    fail(eq.display_name + ": '" + target.name + "' is not an array target");
  NdArray& arr =
      *array_table_[static_cast<size_t>(layout_.array_slot[eq.target])];
  if (!arr.in_bounds(idx))
    fail(eq.display_name + ": write outside the bounds of '" + target.name +
         "'");
  arr.set(idx, value);
}

}  // namespace ps
