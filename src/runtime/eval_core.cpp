#include "runtime/eval_core.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

// PS_BYTECODE_THREADED is the build-level toggle (CMake option of the
// same name); the computed-goto dispatcher additionally needs the
// GNU address-of-label extension, so other compilers silently keep the
// portable switch loop for both dispatch requests.
#ifndef PS_BYTECODE_THREADED
#define PS_BYTECODE_THREADED 1
#endif
#if PS_BYTECODE_THREADED && (defined(__GNUC__) || defined(__clang__))
#define PS_BC_HAVE_THREADED 1
#else
#define PS_BC_HAVE_THREADED 0
#endif

namespace ps {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("eval: " + message);
}

}  // namespace

bool EvalCore::threaded_dispatch_available() {
  return PS_BC_HAVE_THREADED != 0;
}

void EvalCore::compile(const CheckedModule& module) {
  module_ = &module;
  layout_ = BcLayout::for_module(module);
  array_table_.assign(static_cast<size_t>(layout_.array_count), nullptr);
  scalar_i_.assign(static_cast<size_t>(layout_.scalar_count), 0);
  scalar_d_.assign(static_cast<size_t>(layout_.scalar_count), 0.0);
  scalar_bound_.assign(static_cast<size_t>(layout_.scalar_count), 0);

  total_instructions_ = 0;
  folded_instructions_ = 0;
  fused_instructions_ = 0;
  quickened_instructions_ = 0;
  auto optimise = [&](BcProgram& program) {
    folded_instructions_ += fold_constants(program);
    fused_instructions_ += fuse_superinstructions(program);
    total_instructions_ += program.code.size();
  };

  programs_.clear();
  programs_.reserve(module.equations.size());
  for (const CheckedEquation& eq : module.equations) {
    EquationPrograms programs;
    if (bc_is_record_item(module.data[eq.target])) {
      // Record target: one projection program per field (the RHS slot
      // stays empty; eval_store drives field_rhs instead).
      size_t field_count = module.data[eq.target].elem->fields.size();
      programs.field_rhs.reserve(field_count);
      for (size_t f = 0; f < field_count; ++f) {
        programs.field_rhs.push_back(
            compile_record_field_expr(*eq.rhs, f, module, layout_));
        optimise(programs.field_rhs.back());
      }
    } else {
      programs.rhs = compile_expr(*eq.rhs, module, layout_);
      optimise(programs.rhs);
    }
    for (const LhsSubscript& sub : eq.lhs_subs) {
      if (sub.is_index_var) {
        programs.lhs_fixed.push_back(nullptr);
      } else {
        auto fixed = std::make_unique<BcProgram>(
            compile_expr(*sub.fixed, module, layout_));
        optimise(*fixed);
        programs.lhs_fixed.push_back(std::move(fixed));
      }
    }
    programs_.push_back(std::move(programs));
  }
}

void EvalCore::bind_arrays(
    std::map<std::string, NdArray, std::less<>>& arrays) {
  for (size_t i = 0; i < module_->data.size(); ++i) {
    if (layout_.array_slot[i] < 0) continue;
    auto it = arrays.find(module_->data[i].name);
    if (it == arrays.end())
      fail("no storage bound for array '" + module_->data[i].name + "'");
    array_table_[static_cast<size_t>(layout_.array_slot[i])] = &it->second;
  }
}

void EvalCore::set_scalar(size_t data_index, int64_t as_int, double as_real) {
  if (layout_.scalar_slot.empty() || layout_.scalar_slot[data_index] < 0)
    return;
  size_t slot = static_cast<size_t>(layout_.scalar_slot[data_index]);
  scalar_i_[slot] = as_int;
  scalar_d_[slot] = as_real;
  scalar_bound_[slot] = 1;
}

size_t EvalCore::quicken_scalars() {
  if (module_ == nullptr) return 0;
  // A slot is quickenable when its value is pinned for the whole run:
  // bound up front and never the target of an equation (the engines
  // write equation-target scalars mid-run via set_scalar, which must
  // keep taking effect).
  std::vector<uint8_t> quickenable(scalar_bound_);
  for (const CheckedEquation& eq : module_->equations) {
    int32_t slot = layout_.scalar_slot[eq.target];
    if (slot >= 0) quickenable[static_cast<size_t>(slot)] = 0;
  }

  size_t rewritten = 0;
  total_instructions_ = 0;
  auto quicken = [&](BcProgram& program) {
    bool changed = false;
    for (BcInstr& instr : program.code) {
      if (instr.op != BcOp::LoadScalarI && instr.op != BcOp::LoadScalarD)
        continue;
      size_t slot = static_cast<size_t>(instr.a);
      if (!quickenable[slot]) continue;
      if (instr.op == BcOp::LoadScalarI) {
        instr.op = BcOp::PushInt;
        instr.imm = scalar_i_[slot];
      } else {
        instr.op = BcOp::PushReal;
        instr.dimm = scalar_d_[slot];
      }
      instr.a = 0;
      ++rewritten;
      changed = true;
    }
    // The new immediates open folding opportunities (e.g. `M + 1` in a
    // boundary guard) which in turn feed the superinstruction fuser.
    if (changed) {
      folded_instructions_ += fold_constants(program);
      fused_instructions_ += fuse_superinstructions(program);
    }
    total_instructions_ += program.code.size();
  };
  for (EquationPrograms& programs : programs_) {
    quicken(programs.rhs);
    for (BcProgram& field : programs.field_rhs) quicken(field);
    for (auto& lhs : programs.lhs_fixed)
      if (lhs != nullptr) quicken(*lhs);
  }
  quickened_instructions_ += rewritten;
  return rewritten;
}

bool EvalCore::scalar_referenced(size_t data_index) const {
  if (layout_.scalar_slot.empty() || layout_.scalar_slot[data_index] < 0)
    return false;
  int32_t slot = layout_.scalar_slot[data_index];
  auto reads = [&](const BcProgram& p) {
    for (const BcInstr& instr : p.code)
      if ((instr.op == BcOp::LoadScalarI || instr.op == BcOp::LoadScalarD) &&
          instr.a == slot)
        return true;
    return false;
  };
  for (const EquationPrograms& programs : programs_) {
    if (reads(programs.rhs)) return true;
    for (const BcProgram& field : programs.field_rhs)
      if (reads(field)) return true;
    for (const auto& lhs : programs.lhs_fixed)
      if (lhs != nullptr && reads(*lhs)) return true;
  }
  return false;
}

EvalSlot EvalCore::run(const BcProgram& p, const VarFrame& frame,
                       EvalScratch& scratch) const {
  // Small-buffer-optimised variable frame: typical nests resolve into
  // a stack array, arbitrarily deep nests spill into the caller's
  // scratch. There is no depth limit any more -- the old fixed
  // `vars[8]` made run() hard-fail (and the wavefront runner silently
  // tree-walk) on deep loop nests.
  constexpr size_t kInlineVars = 8;
  int64_t inline_vars[kInlineVars];
  int64_t* vars = inline_vars;
  const size_t var_count = p.var_names.size();
  if (var_count > kInlineVars) {
    if (scratch.deep_vars.size() < var_count)
      scratch.deep_vars.resize(var_count);
    vars = scratch.deep_vars.data();
  }
  for (size_t v = 0; v < var_count; ++v) {
    const int64_t* value = frame.find(p.var_names[v]);
    if (value == nullptr)
      fail("unbound index variable '" + p.var_names[v] + "'");
    vars[v] = *value;
  }

#if PS_BC_HAVE_THREADED
  if (dispatch_ == BcDispatch::Threaded)
    return exec_threaded(p, vars, scratch);
#endif
  return exec_switch(p, vars, scratch);
}

// Shared prologue of the two dispatch loops: the evaluation stack and
// subscript scratch (bound from the caller's EvalScratch, so a shared
// core stays safe under the pools -- every worker brings its own), the
// push/pop helpers and the instruction pointer.
#define PS_EXEC_PROLOGUE()                                                  \
  std::vector<EvalSlot>& stack = scratch.stack;                             \
  std::vector<int64_t>& idx = scratch.idx;                                  \
  stack.clear();                                                            \
  if (stack.capacity() < p.max_stack + 4) stack.reserve(p.max_stack + 4);   \
  auto push_i = [&](int64_t v) {                                            \
    EvalSlot s;                                                             \
    s.i = v;                                                                \
    stack.push_back(s);                                                     \
  };                                                                        \
  auto push_d = [&](double v) {                                             \
    EvalSlot s;                                                             \
    s.d = v;                                                                \
    stack.push_back(s);                                                     \
  };                                                                        \
  auto pop = [&]() {                                                        \
    EvalSlot s = stack.back();                                              \
    stack.pop_back();                                                       \
    return s;                                                               \
  };                                                                        \
  const BcInstr* const base = p.code.data();                                \
  const BcInstr* ip = base;

/// Portable reference dispatcher: a switch in a loop. Kept under every
/// compiler and cross-checked bit-exactly against the threaded loop.
EvalSlot EvalCore::exec_switch(const BcProgram& p, const int64_t* vars,
                               EvalScratch& scratch) const {
  PS_EXEC_PROLOGUE()
#define PS_OP(name) case BcOp::name:
#define PS_NEXT()       \
  {                     \
    ++ip;               \
    break;              \
  }
#define PS_GOTO(target)      \
  {                          \
    ip = base + (target);    \
    break;                   \
  }
  for (;;) {
    switch (ip->op) {
#include "runtime/eval_loop.inc"  // NOLINT(bugprone-suspicious-include)
    }
  }
#undef PS_OP
#undef PS_NEXT
#undef PS_GOTO
}

/// Direct-threaded dispatcher: each handler ends by jumping straight to
/// the next instruction's handler through a computed-goto table, so the
/// branch predictor sees one indirect branch per *handler* rather than
/// the single shared dispatch branch of the switch loop.
EvalSlot EvalCore::exec_threaded(const BcProgram& p, const int64_t* vars,
                                 EvalScratch& scratch) const {
#if PS_BC_HAVE_THREADED
  // In enum order, generated from the same X-macro as BcOp.
  static const void* const kDispatch[] = {
#define PS_BC_LABEL(name) &&handle_##name,
      PS_BC_OPCODES(PS_BC_LABEL)
#undef PS_BC_LABEL
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == kBcOpCount);
  PS_EXEC_PROLOGUE()
#define PS_OP(name) handle_##name:
#define PS_NEXT()                                       \
  {                                                     \
    ++ip;                                               \
    goto* kDispatch[static_cast<size_t>(ip->op)];       \
  }
#define PS_GOTO(target)                                 \
  {                                                     \
    ip = base + (target);                               \
    goto* kDispatch[static_cast<size_t>(ip->op)];       \
  }
  goto* kDispatch[static_cast<size_t>(ip->op)];
#include "runtime/eval_loop.inc"  // NOLINT(bugprone-suspicious-include)
#undef PS_OP
#undef PS_NEXT
#undef PS_GOTO
#else
  return exec_switch(p, vars, scratch);
#endif
}

#undef PS_EXEC_PROLOGUE

double EvalCore::eval_rhs_real(const CheckedEquation& eq,
                               const VarFrame& frame,
                               EvalScratch& scratch) const {
  const BcProgram& rhs = programs_[eq.id].rhs;
  EvalSlot result = run(rhs, frame, scratch);
  return rhs.result_real ? result.d : static_cast<double>(result.i);
}

void EvalCore::lhs_index(const CheckedEquation& eq, const VarFrame& frame,
                         EvalScratch& scratch, std::vector<int64_t>& idx) const {
  const EquationPrograms& programs = programs_[eq.id];
  idx.clear();
  idx.reserve(eq.lhs_subs.size());
  for (size_t p = 0; p < eq.lhs_subs.size(); ++p) {
    const LhsSubscript& sub = eq.lhs_subs[p];
    if (sub.is_index_var) {
      const int64_t* v = frame.find(sub.var);
      if (v == nullptr)
        fail(eq.display_name + ": unbound index variable '" + sub.var + "'");
      idx.push_back(*v);
    } else {
      EvalSlot s = run(*programs.lhs_fixed[p], frame, scratch);
      // Real-valued fixed subscripts truncate through the shared
      // defined conversion so every engine tier lands on the same cell
      // (a raw cast is UB for NaN and out-of-range values).
      idx.push_back(programs.lhs_fixed[p]->result_real
                        ? bc_double_to_int64(s.d)
                        : s.i);
    }
  }
}

void EvalCore::eval_store(const CheckedEquation& eq, const VarFrame& frame,
                          EvalScratch& scratch) const {
  const EquationPrograms& eq_programs = programs_[eq.id];
  if (!eq_programs.field_rhs.empty()) {
    // Record target: store every field, the ordinal appended as the
    // trailing subscript of the target tuple.
    std::vector<int64_t>& idx = scratch.lhs_idx;
    lhs_index(eq, frame, scratch, idx);
    const DataItem& target = module_->data[eq.target];
    NdArray& arr =
        *array_table_[static_cast<size_t>(layout_.array_slot[eq.target])];
    idx.push_back(0);
    for (size_t f = 0; f < eq_programs.field_rhs.size(); ++f) {
      idx.back() = static_cast<int64_t>(f);
      EvalSlot s = run(eq_programs.field_rhs[f], frame, scratch);
      double value = eq_programs.field_rhs[f].result_real
                         ? s.d
                         : static_cast<double>(s.i);
      if (!arr.in_bounds(idx))
        fail(eq.display_name + ": write outside the bounds of '" +
             target.name + "'");
      arr.set(idx, value);
    }
    return;
  }
  double value = eval_rhs_real(eq, frame, scratch);
  std::vector<int64_t>& idx = scratch.lhs_idx;
  lhs_index(eq, frame, scratch, idx);
  const DataItem& target = module_->data[eq.target];
  if (layout_.array_slot[eq.target] < 0)
    fail(eq.display_name + ": '" + target.name + "' is not an array target");
  NdArray& arr =
      *array_table_[static_cast<size_t>(layout_.array_slot[eq.target])];
  if (!arr.in_bounds(idx))
    fail(eq.display_name + ": write outside the bounds of '" + target.name +
         "'");
  arr.set(idx, value);
}

}  // namespace ps
