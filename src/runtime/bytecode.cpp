#include "runtime/bytecode.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace ps {

namespace {

enum class Kind { Int, Real, Bool };

Kind kind_of(const Expr& e) {
  if (e.type == nullptr)
    throw std::runtime_error(
        "bytecode: expression lacks a type annotation (run sema first)");
  switch (e.type->scalar_kind()) {
    case TypeKind::Real:
      return Kind::Real;
    case TypeKind::Bool:
      return Kind::Bool;
    default:
      return Kind::Int;
  }
}

class Compiler {
 public:
  Compiler(const CheckedModule& module, const BcLayout& layout)
      : module_(module), layout_(layout) {
    for (const auto& [name, type] : module_.named_types) {
      if (type->kind != TypeKind::Enum) continue;
      for (size_t ord = 0; ord < type->enumerators.size(); ++ord)
        enums_[type->enumerators[ord]] = static_cast<int64_t>(ord);
    }
  }

  BcProgram run(const Expr& expr) {
    Kind kind = compile(expr);
    emit(BcOp::Halt);
    program_.result_real = kind == Kind::Real;
    return std::move(program_);
  }

  /// Project field `ordinal` out of a record-valued expression: the
  /// program of one per-field store of a record-target equation.
  BcProgram run_field(const Expr& expr, size_t ordinal) {
    Kind kind = compile_record_project(expr, ordinal);
    emit(BcOp::Halt);
    program_.result_real = kind == Kind::Real;
    return std::move(program_);
  }

 private:
  int32_t pc() const { return static_cast<int32_t>(program_.code.size()); }

  BcInstr& emit(BcOp op, int32_t a = 0, int32_t b = 0) {
    program_.code.push_back(BcInstr{op, a, b, 0, 0});
    track(op, b);
    return program_.code.back();
  }

  /// Conservative stack bound: count every push. The VM stack grows
  /// dynamically; this only sizes the initial reservation.
  void track(BcOp op, int32_t) {
    switch (op) {
      case BcOp::PushInt:
      case BcOp::PushReal:
      case BcOp::LoadVar:
      case BcOp::LoadScalarI:
      case BcOp::LoadScalarD:
      case BcOp::LoadArrayI:
      case BcOp::LoadArrayD:
        ++depth_;
        if (depth_ > static_cast<int64_t>(program_.max_stack))
          program_.max_stack = static_cast<size_t>(depth_);
        break;
      default:
        break;
    }
  }

  void push_int(int64_t value) {
    emit(BcOp::PushInt).imm = value;
  }
  void push_real(double value) {
    emit(BcOp::PushReal).dimm = value;
  }

  /// Compile `e`, then convert to `want` if necessary.
  void compile_as(const Expr& e, Kind want) {
    Kind got = compile(e);
    if (got == Kind::Int && want == Kind::Real) emit(BcOp::IntToReal);
  }

  Kind compile(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
        push_int(static_cast<const IntLitExpr&>(e).value);
        return Kind::Int;
      case ExprKind::RealLit:
        push_real(static_cast<const RealLitExpr&>(e).value);
        return Kind::Real;
      case ExprKind::BoolLit:
        push_int(static_cast<const BoolLitExpr&>(e).value ? 1 : 0);
        return Kind::Bool;
      case ExprKind::Name:
        return compile_name(static_cast<const NameExpr&>(e));
      case ExprKind::Index:
        return compile_index(static_cast<const IndexExpr&>(e));
      case ExprKind::Field:
        return compile_field(static_cast<const FieldExpr&>(e));
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        Kind k = compile(*u.operand);
        if (u.op == UnaryOp::Not) {
          emit(BcOp::NotB);
          return Kind::Bool;
        }
        emit(k == Kind::Real ? BcOp::NegD : BcOp::NegI);
        return k;
      }
      case ExprKind::Binary:
        return compile_binary(static_cast<const BinaryExpr&>(e));
      case ExprKind::If:
        return compile_if(static_cast<const IfExpr&>(e));
      case ExprKind::Call:
        return compile_call(static_cast<const CallExpr&>(e));
    }
    throw std::runtime_error("bytecode: unknown expression kind");
  }

  Kind compile_name(const NameExpr& e) {
    const DataItem* item = module_.find_data(e.name);
    if (item != nullptr && bc_is_record_item(*item))
      throw std::runtime_error(
          "bytecode: record value outside a field projection");
    // A name that is a scalar data item AND could be a loop variable is
    // resolved as a loop variable first, mirroring sema's scope rules --
    // but sema rejects such shadowing at declaration time, so the data
    // item test is safe here.
    if (item != nullptr && item->is_scalar()) {
      int32_t slot = layout_.scalar_slot[module_.data_index(e.name)];
      if (kind_of(e) == Kind::Real) {
        emit(BcOp::LoadScalarD, slot);
        return Kind::Real;
      }
      emit(BcOp::LoadScalarI, slot);
      return kind_of(e);
    }
    auto en = enums_.find(e.name);
    if (en != enums_.end()) {
      push_int(en->second);
      return Kind::Int;
    }
    // Loop variable.
    int32_t var = -1;
    for (size_t i = 0; i < program_.var_names.size(); ++i)
      if (program_.var_names[i] == e.name) var = static_cast<int32_t>(i);
    if (var < 0) {
      var = static_cast<int32_t>(program_.var_names.size());
      program_.var_names.push_back(e.name);
    }
    emit(BcOp::LoadVar, var);
    return Kind::Int;
  }

  Kind compile_index(const IndexExpr& e) {
    if (e.base->kind != ExprKind::Name)
      throw std::runtime_error("bytecode: unsupported subscripted base");
    const auto& name = static_cast<const NameExpr&>(*e.base).name;
    const DataItem* item = module_.find_data(name);
    if (item == nullptr || item->rank() != e.subs.size())
      throw std::runtime_error("bytecode: bad array reference to '" + name +
                               "'");
    for (const auto& sub : e.subs) {
      Kind k = compile(*sub);
      if (k != Kind::Int)
        throw std::runtime_error("bytecode: non-integer subscript");
    }
    int32_t slot = layout_.array_slot[module_.data_index(name)];
    bool real = item->elem->scalar_kind() == TypeKind::Real;
    emit(real ? BcOp::LoadArrayD : BcOp::LoadArrayI, slot,
         static_cast<int32_t>(e.subs.size()));
    return real ? Kind::Real : Kind::Int;
  }

  /// Resolve a record-valued base expression (a rank-0 record name or
  /// a subscripted record array), compiling its subscripts, and return
  /// the data item. Anything else throws.
  const DataItem* compile_record_base(const Expr& base) {
    if (base.kind == ExprKind::Name) {
      const auto& name = static_cast<const NameExpr&>(base).name;
      const DataItem* item = module_.find_data(name);
      if (item == nullptr || !bc_is_record_item(*item) || item->rank() != 0)
        throw std::runtime_error("bytecode: bad record reference to '" + name +
                                 "'");
      return item;
    }
    if (base.kind == ExprKind::Index) {
      const auto& ix = static_cast<const IndexExpr&>(base);
      if (ix.base->kind != ExprKind::Name)
        throw std::runtime_error("bytecode: unsupported record base");
      const auto& name = static_cast<const NameExpr&>(*ix.base).name;
      const DataItem* item = module_.find_data(name);
      if (item == nullptr || !bc_is_record_item(*item) ||
          item->rank() != ix.subs.size())
        throw std::runtime_error("bytecode: bad record reference to '" + name +
                                 "'");
      for (const auto& sub : ix.subs) {
        Kind k = compile(*sub);
        if (k != Kind::Int)
          throw std::runtime_error("bytecode: non-integer subscript");
      }
      return item;
    }
    throw std::runtime_error("bytecode: unsupported record base expression");
  }

  /// Finish a field access once the base subscripts are on the stack:
  /// push the ordinal as the trailing subscript and load by the field's
  /// scalar kind (records store every field as a double; integer and
  /// boolean fields convert on load, exactly like int-element arrays).
  Kind load_field(const DataItem& item, size_t ordinal) {
    if (ordinal >= item.elem->fields.size())
      throw std::runtime_error("bytecode: record field ordinal out of range");
    const Type* ftype = item.elem->fields[ordinal].second;
    push_int(static_cast<int64_t>(ordinal));
    int32_t slot = layout_.array_slot[module_.data_index(item.name)];
    bool real = ftype->scalar_kind() == TypeKind::Real;
    emit(real ? BcOp::LoadArrayD : BcOp::LoadArrayI, slot,
         static_cast<int32_t>(item.rank() + 1));
    if (real) return Kind::Real;
    return ftype->scalar_kind() == TypeKind::Bool ? Kind::Bool : Kind::Int;
  }

  /// `r.f` / `a[i,j].f`: an array load with the field ordinal appended
  /// as one extra subscript (see bc_is_record_item).
  Kind compile_field(const FieldExpr& e) {
    const DataItem* item = compile_record_base(*e.base);
    int64_t ordinal = bc_record_field_ordinal(*item->elem, e.field);
    if (ordinal < 0)
      throw std::runtime_error("bytecode: record has no field '" + e.field +
                               "'");
    return load_field(*item, static_cast<size_t>(ordinal));
  }

  /// Project field `ordinal` out of a record-valued expression -- the
  /// RHS of a record-target equation. Supported shapes: a record name,
  /// a record array element, and conditionals over those; each arm
  /// necessarily carries the same field layout (sema's assignability
  /// check), so no conversion is needed at the join.
  Kind compile_record_project(const Expr& e, size_t ordinal) {
    switch (e.kind) {
      case ExprKind::Name:
      case ExprKind::Index:
        return load_field(*compile_record_base(e), ordinal);
      case ExprKind::If: {
        const auto& i = static_cast<const IfExpr&>(e);
        compile(*i.cond);
        size_t jz_at = program_.code.size();
        emit(BcOp::JumpIfFalse);
        Kind tk = compile_record_project(*i.then_expr, ordinal);
        size_t jend_at = program_.code.size();
        emit(BcOp::Jump);
        program_.code[jz_at].a = pc();
        Kind ek = compile_record_project(*i.else_expr, ordinal);
        program_.code[jend_at].a = pc();
        if (tk != ek)
          throw std::runtime_error(
              "bytecode: conditional arms disagree on record field kind");
        return tk;
      }
      default:
        throw std::runtime_error(
            "bytecode: unsupported record-valued expression");
    }
  }

  Kind compile_binary(const BinaryExpr& e) {
    switch (e.op) {
      case BinaryOp::And: {
        // lhs && rhs with short circuit.
        compile(*e.lhs);
        size_t jz_at = program_.code.size();
        emit(BcOp::JumpIfFalse);
        compile(*e.rhs);
        size_t jend_at = program_.code.size();
        emit(BcOp::Jump);
        program_.code[jz_at].a = pc();
        push_int(0);
        program_.code[jend_at].a = pc();
        return Kind::Bool;
      }
      case BinaryOp::Or: {
        compile(*e.lhs);
        size_t jz_at = program_.code.size();
        emit(BcOp::JumpIfFalse);
        push_int(1);
        size_t jend_at = program_.code.size();
        emit(BcOp::Jump);
        program_.code[jz_at].a = pc();
        compile(*e.rhs);
        program_.code[jend_at].a = pc();
        return Kind::Bool;
      }
      default:
        break;
    }

    Kind lk = kind_of(*e.lhs);
    Kind rk = kind_of(*e.rhs);
    bool real = lk == Kind::Real || rk == Kind::Real || e.op == BinaryOp::Div;
    Kind want = real ? Kind::Real : Kind::Int;
    compile_as(*e.lhs, want);
    compile_as(*e.rhs, want);
    switch (e.op) {
      case BinaryOp::Add: emit(real ? BcOp::AddD : BcOp::AddI); break;
      case BinaryOp::Sub: emit(real ? BcOp::SubD : BcOp::SubI); break;
      case BinaryOp::Mul: emit(real ? BcOp::MulD : BcOp::MulI); break;
      case BinaryOp::Div: emit(BcOp::DivD); break;
      case BinaryOp::IntDiv: emit(BcOp::DivI); break;
      case BinaryOp::Mod: emit(BcOp::ModI); break;
      case BinaryOp::Eq: emit(real ? BcOp::CmpEqD : BcOp::CmpEqI); break;
      case BinaryOp::Ne: emit(real ? BcOp::CmpNeD : BcOp::CmpNeI); break;
      case BinaryOp::Lt: emit(real ? BcOp::CmpLtD : BcOp::CmpLtI); break;
      case BinaryOp::Le: emit(real ? BcOp::CmpLeD : BcOp::CmpLeI); break;
      case BinaryOp::Gt: emit(real ? BcOp::CmpGtD : BcOp::CmpGtI); break;
      case BinaryOp::Ge: emit(real ? BcOp::CmpGeD : BcOp::CmpGeI); break;
      default:
        throw std::runtime_error("bytecode: unexpected operator");
    }
    switch (e.op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul:
        return want;
      case BinaryOp::Div:
        return Kind::Real;
      case BinaryOp::IntDiv:
      case BinaryOp::Mod:
        return Kind::Int;
      default:
        return Kind::Bool;
    }
  }

  Kind compile_if(const IfExpr& e) {
    Kind tk = kind_of(*e.then_expr);
    Kind ek = kind_of(*e.else_expr);
    Kind want = (tk == Kind::Real || ek == Kind::Real) ? Kind::Real
                : (tk == Kind::Bool ? Kind::Bool : Kind::Int);
    compile(*e.cond);
    size_t jz_at = program_.code.size();
    emit(BcOp::JumpIfFalse);
    compile_as(*e.then_expr, want);
    size_t jend_at = program_.code.size();
    emit(BcOp::Jump);
    program_.code[jz_at].a = pc();
    compile_as(*e.else_expr, want);
    program_.code[jend_at].a = pc();
    return want;
  }

  Kind compile_call(const CallExpr& e) {
    auto unary_real = [&](BcOp op) {
      compile_as(*e.args[0], Kind::Real);
      emit(op);
      return Kind::Real;
    };
    if (e.callee == "sqrt") return unary_real(BcOp::Sqrt);
    if (e.callee == "sin") return unary_real(BcOp::Sin);
    if (e.callee == "cos") return unary_real(BcOp::Cos);
    if (e.callee == "exp") return unary_real(BcOp::Exp);
    if (e.callee == "ln") return unary_real(BcOp::Ln);
    if (e.callee == "floor") {
      compile_as(*e.args[0], Kind::Real);
      emit(BcOp::FloorD);
      return Kind::Int;
    }
    if (e.callee == "ceil") {
      compile_as(*e.args[0], Kind::Real);
      emit(BcOp::CeilD);
      return Kind::Int;
    }
    if (e.callee == "abs") {
      Kind k = compile(*e.args[0]);
      emit(k == Kind::Real ? BcOp::AbsD : BcOp::AbsI);
      return k;
    }
    if (e.callee == "min" || e.callee == "max") {
      Kind a = kind_of(*e.args[0]);
      Kind b = kind_of(*e.args[1]);
      bool real = a == Kind::Real || b == Kind::Real;
      Kind want = real ? Kind::Real : Kind::Int;
      compile_as(*e.args[0], want);
      compile_as(*e.args[1], want);
      if (e.callee == "min")
        emit(real ? BcOp::MinD : BcOp::MinI);
      else
        emit(real ? BcOp::MaxD : BcOp::MaxI);
      return want;
    }
    throw std::runtime_error("bytecode: unknown intrinsic '" + e.callee +
                             "'");
  }

  const CheckedModule& module_;
  const BcLayout& layout_;
  BcProgram program_;
  int64_t depth_ = 0;
  std::map<std::string, int64_t, std::less<>> enums_;
};

}  // namespace

BcLayout BcLayout::for_module(const CheckedModule& module) {
  BcLayout layout;
  layout.scalar_slot.assign(module.data.size(), -1);
  layout.array_slot.assign(module.data.size(), -1);
  for (size_t i = 0; i < module.data.size(); ++i) {
    // Rank-0 records report is_scalar(), but they live in array slots:
    // their storage is a 1-d array over the field ordinals.
    if (module.data[i].is_scalar() && !bc_is_record_item(module.data[i]))
      layout.scalar_slot[i] = layout.scalar_count++;
    else
      layout.array_slot[i] = layout.array_count++;
  }
  return layout;
}

BcProgram compile_expr(const Expr& expr, const CheckedModule& module,
                       const BcLayout& layout) {
  Compiler compiler(module, layout);
  return compiler.run(expr);
}

BcProgram compile_record_field_expr(const Expr& expr, size_t ordinal,
                                    const CheckedModule& module,
                                    const BcLayout& layout) {
  Compiler compiler(module, layout);
  return compiler.run_field(expr, ordinal);
}

namespace {

bool is_push(const BcInstr& instr) {
  return instr.op == BcOp::PushInt || instr.op == BcOp::PushReal;
}

/// Every opcode whose `a` operand is an absolute jump target -- the
/// plain jumps plus the fused compare-and-branch superinstructions.
/// Both the folder and the fuser must remap all of them when a splice
/// shrinks the program.
bool is_branch(BcOp op) {
  switch (op) {
    case BcOp::Jump:
    case BcOp::JumpIfFalse:
    case BcOp::CmpEqIJf:
    case BcOp::CmpNeIJf:
    case BcOp::CmpLtIJf:
    case BcOp::CmpLeIJf:
    case BcOp::CmpGtIJf:
    case BcOp::CmpGeIJf:
      return true;
    default:
      return false;
  }
}

/// True when some jump lands strictly inside (start, start + span):
/// folding would delete its target. A jump landing exactly at `start`
/// is fine -- every span we splice is a complete unit with the same
/// stack effect as its replacement instruction.
bool jump_lands_inside(const std::vector<BcInstr>& code, size_t start,
                       size_t span) {
  for (const BcInstr& instr : code) {
    if (!is_branch(instr.op)) continue;
    size_t target = static_cast<size_t>(instr.a);
    if (target > start && target < start + span) return true;
  }
  return false;
}

/// Replace `span` instructions at `start` with the single `folded`
/// instruction, remapping every jump target past the span.
void splice(BcProgram& program, size_t start, size_t span, BcInstr folded) {
  std::vector<BcInstr>& code = program.code;
  code[start] = folded;
  code.erase(code.begin() + static_cast<int64_t>(start + 1),
             code.begin() + static_cast<int64_t>(start + span));
  int32_t shrink = static_cast<int32_t>(span - 1);
  for (BcInstr& instr : code) {
    if (!is_branch(instr.op)) continue;
    if (instr.a >= static_cast<int32_t>(start + span)) instr.a -= shrink;
  }
}

BcInstr make_push_int(int64_t value) {
  BcInstr instr{BcOp::PushInt, 0, 0, 0, 0};
  instr.imm = value;
  return instr;
}

BcInstr make_push_real(double value) {
  BcInstr instr{BcOp::PushReal, 0, 0, 0, 0};
  instr.dimm = value;
  return instr;
}

/// Evaluate `op` over two literal pushes; nullopt when not a foldable
/// combination (wrong literal kinds, or div/mod by zero).
std::optional<BcInstr> fold_binary(BcOp op, const BcInstr& lhs,
                                   const BcInstr& rhs) {
  bool ints = lhs.op == BcOp::PushInt && rhs.op == BcOp::PushInt;
  bool reals = lhs.op == BcOp::PushReal && rhs.op == BcOp::PushReal;
  int64_t li = lhs.imm, ri = rhs.imm;
  double ld = lhs.dimm, rd = rhs.dimm;
  switch (op) {
    // The wrapping helpers match the VM's own integer ops exactly:
    // folding INT64 extremes at compile time must not hit signed-
    // overflow UB where the runtime would have wrapped.
    case BcOp::AddI: if (ints) return make_push_int(bc_wrap_add(li, ri)); break;
    case BcOp::SubI: if (ints) return make_push_int(bc_wrap_sub(li, ri)); break;
    case BcOp::MulI: if (ints) return make_push_int(bc_wrap_mul(li, ri)); break;
    case BcOp::DivI:
      // INT64_MIN / -1 overflows; leave that single case to the VM.
      if (ints && ri != 0 &&
          !(li == std::numeric_limits<int64_t>::min() && ri == -1))
        return make_push_int(li / ri);
      break;
    case BcOp::ModI:
      if (ints && ri != 0 &&
          !(li == std::numeric_limits<int64_t>::min() && ri == -1))
        return make_push_int(li % ri);
      break;
    case BcOp::MinI: if (ints) return make_push_int(std::min(li, ri)); break;
    case BcOp::MaxI: if (ints) return make_push_int(std::max(li, ri)); break;
    case BcOp::CmpEqI: if (ints) return make_push_int(li == ri ? 1 : 0); break;
    case BcOp::CmpNeI: if (ints) return make_push_int(li != ri ? 1 : 0); break;
    case BcOp::CmpLtI: if (ints) return make_push_int(li < ri ? 1 : 0); break;
    case BcOp::CmpLeI: if (ints) return make_push_int(li <= ri ? 1 : 0); break;
    case BcOp::CmpGtI: if (ints) return make_push_int(li > ri ? 1 : 0); break;
    case BcOp::CmpGeI: if (ints) return make_push_int(li >= ri ? 1 : 0); break;
    case BcOp::AddD: if (reals) return make_push_real(ld + rd); break;
    case BcOp::SubD: if (reals) return make_push_real(ld - rd); break;
    case BcOp::MulD: if (reals) return make_push_real(ld * rd); break;
    case BcOp::DivD: if (reals) return make_push_real(ld / rd); break;
    case BcOp::MinD: if (reals) return make_push_real(std::min(ld, rd)); break;
    case BcOp::MaxD: if (reals) return make_push_real(std::max(ld, rd)); break;
    case BcOp::CmpEqD: if (reals) return make_push_int(ld == rd ? 1 : 0); break;
    case BcOp::CmpNeD: if (reals) return make_push_int(ld != rd ? 1 : 0); break;
    case BcOp::CmpLtD: if (reals) return make_push_int(ld < rd ? 1 : 0); break;
    case BcOp::CmpLeD: if (reals) return make_push_int(ld <= rd ? 1 : 0); break;
    case BcOp::CmpGtD: if (reals) return make_push_int(ld > rd ? 1 : 0); break;
    case BcOp::CmpGeD: if (reals) return make_push_int(ld >= rd ? 1 : 0); break;
    default: break;
  }
  return std::nullopt;
}

/// Evaluate a unary op over one literal push; the maths calls are the
/// very ones the VM executes, so folding is bit-identical.
std::optional<BcInstr> fold_unary(BcOp op, const BcInstr& operand) {
  bool is_int = operand.op == BcOp::PushInt;
  int64_t i = operand.imm;
  double d = operand.dimm;
  switch (op) {
    case BcOp::NegI: if (is_int) return make_push_int(bc_wrap_neg(i)); break;
    case BcOp::AbsI:
      if (is_int) return make_push_int(i < 0 ? bc_wrap_neg(i) : i);
      break;
    case BcOp::NotB: if (is_int) return make_push_int(i == 0 ? 1 : 0); break;
    case BcOp::IntToReal:
      if (is_int) return make_push_real(static_cast<double>(i));
      break;
    case BcOp::NegD: if (!is_int) return make_push_real(-d); break;
    case BcOp::AbsD: if (!is_int) return make_push_real(std::fabs(d)); break;
    case BcOp::Sqrt: if (!is_int) return make_push_real(std::sqrt(d)); break;
    case BcOp::Sin: if (!is_int) return make_push_real(std::sin(d)); break;
    case BcOp::Cos: if (!is_int) return make_push_real(std::cos(d)); break;
    case BcOp::Exp: if (!is_int) return make_push_real(std::exp(d)); break;
    case BcOp::Ln: if (!is_int) return make_push_real(std::log(d)); break;
    case BcOp::FloorD:
      // double -> int64 is UB for NaN and out-of-range values; fold
      // only when the result is representable, else leave the
      // instruction for the VM (matching its behaviour exactly).
      if (!is_int && bc_double_fits_int64(std::floor(d)))
        return make_push_int(static_cast<int64_t>(std::floor(d)));
      break;
    case BcOp::CeilD:
      if (!is_int && bc_double_fits_int64(std::ceil(d)))
        return make_push_int(static_cast<int64_t>(std::ceil(d)));
      break;
    default: break;
  }
  return std::nullopt;
}

/// One left-to-right folding sweep; true when anything changed. After a
/// splice the scan resumes one instruction back (the new push may itself
/// be an operand of the previous window) instead of restarting, so a
/// whole constant subtree collapses in a single sweep.
bool fold_sweep(BcProgram& program) {
  std::vector<BcInstr>& code = program.code;
  bool changed = false;
  size_t i = 0;
  while (i < code.size()) {
    // push push binop -> push
    if (i + 2 < code.size() && is_push(code[i]) && is_push(code[i + 1]) &&
        !jump_lands_inside(code, i, 3)) {
      if (auto folded = fold_binary(code[i + 2].op, code[i], code[i + 1])) {
        splice(program, i, 3, *folded);
        changed = true;
        i = i > 0 ? i - 1 : 0;
        continue;
      }
    }
    // push unaryop -> push
    if (i + 1 < code.size() && is_push(code[i]) &&
        !jump_lands_inside(code, i, 2)) {
      if (auto folded = fold_unary(code[i + 1].op, code[i])) {
        splice(program, i, 2, *folded);
        changed = true;
        i = i > 0 ? i - 1 : 0;
        continue;
      }
    }
    ++i;
  }
  return changed;
}

/// The fused compare-and-branch for an integer compare followed by
/// JumpIfFalse, or nullopt when `op` is not an int compare.
std::optional<BcOp> fused_compare_branch(BcOp op) {
  switch (op) {
    case BcOp::CmpEqI: return BcOp::CmpEqIJf;
    case BcOp::CmpNeI: return BcOp::CmpNeIJf;
    case BcOp::CmpLtI: return BcOp::CmpLtIJf;
    case BcOp::CmpLeI: return BcOp::CmpLeIJf;
    case BcOp::CmpGtI: return BcOp::CmpGtIJf;
    case BcOp::CmpGeI: return BcOp::CmpGeIJf;
    default: return std::nullopt;
  }
}

/// Subscript producers the LoadArrayVars fusion accepts: a plain
/// variable load, or a variable plus a small constant offset. Returns
/// the packed 16-bit (var, offset) entry, or nullopt.
std::optional<uint64_t> packed_subscript(const BcInstr& instr) {
  int64_t offset = 0;
  if (instr.op == BcOp::LoadVarAddImm) {
    offset = instr.imm;
  } else if (instr.op != BcOp::LoadVar) {
    return std::nullopt;
  }
  if (instr.a < 0 || instr.a > 0xff) return std::nullopt;
  if (offset < -128 || offset > 127) return std::nullopt;
  return static_cast<uint64_t>(instr.a) |
         (static_cast<uint64_t>(static_cast<uint8_t>(offset)) << 8);
}

/// One fusion sweep; true when anything changed. Patterns are matched
/// left to right so the LoadVarAddImm triples collapse first and the
/// array fusion then sees them as single subscript producers.
bool fuse_sweep(BcProgram& program) {
  std::vector<BcInstr>& code = program.code;
  bool changed = false;
  size_t i = 0;
  while (i < code.size()) {
    // LoadVar v; PushInt c; AddI|SubI  ->  LoadVarAddImm v, +-c
    if (i + 2 < code.size() && code[i].op == BcOp::LoadVar &&
        code[i + 1].op == BcOp::PushInt &&
        (code[i + 2].op == BcOp::AddI || code[i + 2].op == BcOp::SubI) &&
        !jump_lands_inside(code, i, 3)) {
      BcInstr fused{BcOp::LoadVarAddImm, code[i].a, 0, 0, 0};
      fused.imm = code[i + 2].op == BcOp::AddI ? code[i + 1].imm
                                               : bc_wrap_neg(code[i + 1].imm);
      splice(program, i, 3, fused);
      changed = true;
      continue;
    }
    // CmpXxI; JumpIfFalse t  ->  CmpXxIJf t
    if (i + 1 < code.size() && code[i + 1].op == BcOp::JumpIfFalse &&
        !jump_lands_inside(code, i, 2)) {
      if (auto branch = fused_compare_branch(code[i].op)) {
        splice(program, i, 2, BcInstr{*branch, code[i + 1].a, 0, 0, 0});
        changed = true;
        continue;
      }
    }
    // rank x (LoadVar | LoadVarAddImm); LoadArray  ->  LoadArrayVars
    if (code[i].op == BcOp::LoadArrayI || code[i].op == BcOp::LoadArrayD) {
      size_t rank = static_cast<size_t>(code[i].b);
      if (rank >= 1 && rank <= 4 && i >= rank &&
          !jump_lands_inside(code, i - rank, rank + 1)) {
        uint64_t packed = 0;
        bool fusable = true;
        for (size_t d = 0; d < rank && fusable; ++d) {
          auto entry = packed_subscript(code[i - rank + d]);
          if (entry)
            packed |= *entry << (16 * d);
          else
            fusable = false;
        }
        if (fusable) {
          BcInstr fused{code[i].op == BcOp::LoadArrayI ? BcOp::LoadArrayVarsI
                                                       : BcOp::LoadArrayVarsD,
                        code[i].a, code[i].b, 0, 0};
          fused.imm = static_cast<int64_t>(packed);
          splice(program, i - rank, rank + 1, fused);
          i -= rank;
          changed = true;
          continue;
        }
      }
    }
    ++i;
  }
  return changed;
}

}  // namespace

size_t fold_constants(BcProgram& program) {
  size_t before = program.code.size();
  while (fold_sweep(program)) {
  }
  return before - program.code.size();
}

size_t fuse_superinstructions(BcProgram& program) {
  size_t before = program.code.size();
  while (fuse_sweep(program)) {
  }
  return before - program.code.size();
}

std::string BcProgram::disassemble() const {
  // Generated from the same X-macro as the enum, so a new opcode cannot
  // silently disassemble under the wrong name.
  static const char* const names[] = {
#define PS_BC_NAME(name) #name,
      PS_BC_OPCODES(PS_BC_NAME)
#undef PS_BC_NAME
  };
  static_assert(sizeof(names) / sizeof(names[0]) == kBcOpCount);
  std::ostringstream os;
  for (size_t i = 0; i < code.size(); ++i) {
    const BcInstr& instr = code[i];
    os << i << ": " << names[static_cast<size_t>(instr.op)];
    switch (instr.op) {
      case BcOp::PushInt:
        os << ' ' << instr.imm;
        break;
      case BcOp::PushReal:
        os << ' ' << instr.dimm;
        break;
      case BcOp::LoadVar:
        os << ' ' << var_names[static_cast<size_t>(instr.a)];
        break;
      case BcOp::LoadVarAddImm:
        os << ' ' << var_names[static_cast<size_t>(instr.a)];
        if (instr.imm >= 0) os << '+';
        os << instr.imm;
        break;
      case BcOp::LoadScalarI:
      case BcOp::LoadScalarD:
      case BcOp::JumpIfFalse:
      case BcOp::Jump:
      case BcOp::CmpEqIJf:
      case BcOp::CmpNeIJf:
      case BcOp::CmpLtIJf:
      case BcOp::CmpLeIJf:
      case BcOp::CmpGtIJf:
      case BcOp::CmpGeIJf:
        os << ' ' << instr.a;
        break;
      case BcOp::LoadArrayI:
      case BcOp::LoadArrayD:
        os << " slot=" << instr.a << " rank=" << instr.b;
        break;
      case BcOp::LoadArrayVarsI:
      case BcOp::LoadArrayVarsD: {
        os << " slot=" << instr.a << " [";
        uint64_t packed = static_cast<uint64_t>(instr.imm);
        for (int32_t d = 0; d < instr.b; ++d) {
          uint64_t entry = (packed >> (16 * d)) & 0xffff;
          size_t var = entry & 0xff;
          int64_t off = static_cast<int8_t>((entry >> 8) & 0xff);
          if (d) os << ", ";
          os << var_names[var];
          if (off != 0) {
            if (off > 0) os << '+';
            os << off;
          }
        }
        os << ']';
        break;
      }
      default:
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ps
