#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/eval_core.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/wavefront_schedule.hpp"

namespace ps {

/// How the points within one hyperplane are executed.
enum class WavefrontBackend {
  /// Resolve from the options: PooledChunked when a pool is set,
  /// Sequential otherwise (the historical behaviour).
  Auto,
  /// Every point on the calling thread, one cursor, one context.
  Sequential,
  /// Dynamic chunk self-scheduling on the thread pool
  /// (ThreadPool::parallel_for_chunked): chunks claim a worker context
  /// from a small free list, so irregular hyperplanes balance.
  PooledChunked,
  /// Static point striping: shard w owns the contiguous point range
  /// [w*count/W, (w+1)*count/W) of every hyperplane and always executes
  /// on its own WorkerContext, giving each shard stable scratch (and a
  /// per-shard point counter) across the whole run.
  Sharded,
  /// Work stealing: each worker owns a contiguous band of point-range
  /// chunks in a per-worker deque; owners pop from the front, idle
  /// workers steal from the back of a victim's deque. Irregular
  /// per-point costs rebalance without the claiming traffic the pooled
  /// backend pays on every chunk.
  WorkStealing,
};

[[nodiscard]] const char* wavefront_backend_name(WavefrontBackend backend);

/// Parse a --wavefront-backend= value ("auto", "sequential", "pooled",
/// "sharded", "stealing"); nullopt for anything else.
[[nodiscard]] std::optional<WavefrontBackend> parse_wavefront_backend(
    std::string_view name);

/// Explicit per-worker execution state: the index-variable frame, the
/// point-coordinate scratch and the bytecode VM scratch, plus a
/// per-context point counter (the shard statistics). These used to be
/// thread_locals inside wavefront.cpp/eval_core, which silently coupled
/// concurrent runners sharing an OS thread; every backend now owns its
/// contexts outright.
struct WorkerContext {
  VarFrame frame;
  std::vector<int64_t> vals;  // current point, transformed coordinates
  EvalScratch scratch;
  int64_t points = 0;  // points this context executed (lifetime)
};

/// Evaluates the recurrence at the point in `ctx.vals` using that
/// context's frame and scratch. Writes go to disjoint array cells per
/// point (the DOALL guarantee), so bodies may run concurrently.
using PointBody = std::function<void(WorkerContext&)>;

/// Evaluates the recurrence over a whole contiguous point range
/// [begin, end) of the hyperplane in one call (the native tier's
/// batched stripe kernel -- the body scans the range itself, so the
/// backend pays one call per stripe instead of one per point). Must
/// return the number of points actually executed.
using StripeBody =
    std::function<int64_t(WorkerContext&, int64_t begin, int64_t end)>;

/// Backend layer of the wavefront engine: executes the points of one
/// hyperplane, pulling them lazily from the schedule's cursors. The
/// runner calls run_hyperplane once per hyperplane (barriers between
/// hyperplanes are implicit in the call sequence, exactly the cost
/// model of the paper's generated loops).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Human-readable backend description for reports and --verbose.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Execute every point of hyperplane `t`; returns the point count.
  /// Exceptions from the body are rethrown on the calling thread after
  /// all workers drain (first one wins).
  virtual int64_t run_hyperplane(const HyperplaneSchedule& schedule, int64_t t,
                                 const PointBody& body) = 0;

  /// Execute every point of hyperplane `t` through a batched stripe
  /// body: the backend only partitions [0, count) into contiguous
  /// ranges (its usual chunking/striping policy) and the body scans
  /// each range. Coverage is checked exactly like run_hyperplane.
  virtual int64_t run_hyperplane_stripes(const HyperplaneSchedule& schedule,
                                         int64_t t,
                                         const StripeBody& body) = 0;

  /// Lifetime point counters, one per worker context (size 1 for the
  /// sequential backend; shard balance for the sharded one).
  [[nodiscard]] virtual std::vector<int64_t> context_points() const = 0;

  /// Zero the per-context counters (the runner resets stats per run()).
  virtual void reset_counters() = 0;

  /// Lifetime number of chunks executed by a context that did not own
  /// them (work-stealing backend only; every other backend reports 0).
  [[nodiscard]] virtual int64_t steal_count() const { return 0; }
};

/// Build the backend `kind` resolves to over `pool`. `shards` sizes
/// the sharded and work-stealing backends (0 = the pool's worker
/// count, or 1 without a pool). Auto resolves to PooledChunked when
/// `pool` is non-null and Sequential otherwise.
[[nodiscard]] std::unique_ptr<ExecutionBackend> make_wavefront_backend(
    WavefrontBackend kind, ThreadPool* pool, size_t shards);

}  // namespace ps
