#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/const_eval.hpp"
#include "frontend/sema.hpp"
#include "runtime/eval_core.hpp"
#include "runtime/ndarray.hpp"
#include "runtime/thread_pool.hpp"
#include "transform/hyperplane.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

struct WavefrontOptions {
  /// Worker pool for the points within one hyperplane; nullptr runs
  /// sequentially.
  ThreadPool* pool = nullptr;
  /// Physical slices of the transformed array's hyperplane dimension;
  /// 0 derives the window from the recurrence offsets (1 + the largest
  /// backward K' offset -- 3 for the paper's relaxation).
  int64_t window = 0;
  /// Expression evaluator for recurrence points, rotate-ins and consumer
  /// flushes. Bytecode is the default hot path; the runner falls back to
  /// the tree-walk reference only when a module uses constructs the
  /// bytecode compiler genuinely does not cover (record fields, lazily
  /// unbound scalars) -- and records why in WavefrontStats so the
  /// fallback is observable (`engine()` reports the evaluator in
  /// effect, `fallback_reason()` the cause).
  EvalEngine engine = EvalEngine::Bytecode;
  /// Bytecode VM dispatch strategy (Threaded = computed goto where
  /// compiled in, Switch = the portable reference loop).
  BcDispatch dispatch = BcDispatch::Threaded;
};

struct WavefrontStats {
  int64_t hyperplanes = 0;  // outer time steps executed
  int64_t points = 0;       // recurrence points evaluated
  int64_t flushed = 0;      // consumer equation instances written
  /// Why the runner is on the tree-walk evaluator; empty on the
  /// bytecode engine. Set at construction, preserved across run()s.
  std::string fallback_reason;
};

/// Executes a hyperplane-transformed module (the output of
/// hyperplane_rewrite) with *windowed* storage for the transformed
/// array -- the paper's preferred section 4 code-generation alternative:
/// "rotate the input array into A'[1], work entirely with the
/// transformed array A' in the recurrence, and unrotate back into the
/// return parameter".
///
/// Concretely:
///  * A' keeps only `window` hyperplane slices (3 x maxK x M for the
///    relaxation, versus the full (2maxK+2M+1) x maxK x (M+2) box);
///  * the input regions of the combined recurrence (the pulled-back
///    "A[1] = InitialA" guard arm) materialise on demand as the
///    wavefront reaches them -- the rotate-in;
///  * equations reading A' from outside the recurrence (e.g.
///    "newA[I,J] = A'[2maxK+I+J, maxK, I]") are flushed instance by
///    instance as soon as the hyperplane slice they read completes,
///    while it is still live in the window -- the unrotate;
///  * points within one hyperplane carry no dependences, so they run as
///    a DOALL on the pool; hyperplanes are separated by one barrier
///    each, exactly the cost model of the paper's generated loops.
///
/// Exactness of the scan comes from the Fourier-Motzkin `nest`, so no
/// per-point in-domain guard work is spent outside the image.
class WavefrontRunner {
 public:
  /// `transformed` must be the checked hyperplane-rewritten module;
  /// `nest` the exact bounds of its recurrence domain (in
  /// transform.new_vars order, outermost = the hyperplane coordinate).
  /// Throws std::runtime_error for module shapes outside the supported
  /// fragment (multiple recurrences on A', consumer reads spanning more
  /// than the window, record elements).
  WavefrontRunner(const CheckedModule& transformed,
                  const HyperplaneTransform& transform,
                  const LoopNestBounds& nest, IntEnv int_inputs,
                  std::map<std::string, double> real_inputs = {},
                  WavefrontOptions options = {});

  /// Input/output storage; write inputs before run(), read outputs
  /// after. The transformed array itself is windowed and transient.
  [[nodiscard]] NdArray& array(std::string_view name);
  [[nodiscard]] const NdArray& array(std::string_view name) const;

  void run();

  [[nodiscard]] const WavefrontStats& stats() const { return stats_; }

  /// Doubles allocated across all arrays (the memory benches compare
  /// this against the fully allocated interpreter).
  [[nodiscard]] size_t allocated_doubles() const;

  /// The derived (or forced) hyperplane window.
  [[nodiscard]] int64_t window() const { return window_; }

  /// The evaluator actually in use (may be TreeWalk even when Bytecode
  /// was requested, if the module falls outside the bytecode fragment).
  [[nodiscard]] EvalEngine engine() const {
    return use_bytecode_ ? EvalEngine::Bytecode : EvalEngine::TreeWalk;
  }

  /// Why the tree-walk evaluator is in effect (empty on bytecode).
  /// Also recorded in stats() so batch reports can surface it.
  [[nodiscard]] const std::string& fallback_reason() const {
    return fallback_reason_;
  }

 private:
  struct ConsumerInstance {
    size_t equation = 0;             // index into module.equations
    std::vector<int64_t> loop_vals;  // one per equation loop_dim
  };

  void execute_pre_equations();
  void build_consumer_buckets();
  void execute_hyperplane(int64_t t);
  void flush_bucket(int64_t t);
  void setup_bytecode();
  void eval_equation_instance(const CheckedEquation& eq,
                              const std::vector<int64_t>& loop_vals);

  const CheckedModule& module_;
  const HyperplaneTransform& transform_;
  const LoopNestBounds& nest_;
  IntEnv int_env_;
  std::map<std::string, double> real_inputs_;
  WavefrontOptions options_;

  std::string new_array_;          // "A'"
  size_t recurrence_ = 0;          // equation index defining A'
  std::vector<size_t> pre_;        // equations independent of A'
  std::vector<size_t> consumers_;  // equations reading A'
  int64_t window_ = 0;

  std::map<std::string, NdArray, std::less<>> arrays_;
  std::map<int64_t, std::vector<ConsumerInstance>> buckets_;
  WavefrontStats stats_;

  /// Shared bytecode execution core (compiled once per runner when the
  /// Bytecode engine is selected and the module fits the fragment).
  EvalCore core_;
  bool use_bytecode_ = false;
  std::string fallback_reason_;
};

}  // namespace ps
