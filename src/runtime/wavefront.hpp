#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/const_eval.hpp"
#include "frontend/sema.hpp"
#include "runtime/consumer_stream.hpp"
#include "runtime/engine_host.hpp"
#include "runtime/ndarray.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/wavefront_backend.hpp"
#include "runtime/wavefront_schedule.hpp"
#include "transform/hyperplane.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

struct WavefrontOptions {
  /// Worker pool for the points within one hyperplane; nullptr runs
  /// sequentially.
  ThreadPool* pool = nullptr;
  /// Physical slices of the transformed array's hyperplane dimension;
  /// 0 derives the window from the recurrence offsets (1 + the largest
  /// backward K' offset -- 3 for the paper's relaxation).
  int64_t window = 0;
  /// Expression evaluator for recurrence points, rotate-ins and consumer
  /// flushes. Bytecode is the default hot path; the runner falls back to
  /// the tree-walk reference only when a module uses constructs the
  /// bytecode compiler genuinely does not cover (record fields, lazily
  /// unbound scalars) -- and records why in WavefrontStats so the
  /// fallback is observable (`engine()` reports the evaluator in
  /// effect, `fallback_reason()` the cause).
  EvalEngine engine = EvalEngine::Bytecode;
  /// Bytecode VM dispatch strategy (Threaded = computed goto where
  /// compiled in, Switch = the portable reference loop).
  BcDispatch dispatch = BcDispatch::Threaded;
  /// How the points of one hyperplane execute (psc --wavefront-backend=).
  /// Auto keeps the historical behaviour: PooledChunked with a pool,
  /// Sequential without. All backends are bit-exact against each other.
  WavefrontBackend backend = WavefrontBackend::Auto;
  /// Worker count of the Sharded backend (0 = the pool size, or 1
  /// without a pool). Ignored by the other backends.
  size_t shards = 0;
  /// Where the native tier persists compiled shared objects (normally
  /// the CompileService's ArtifactCache). nullptr compiles without
  /// persistence. Ignored unless engine == Native.
  NativeObjectStore* native_store = nullptr;
  /// Native tier only: drive whole point stripes through the batched
  /// psc_stripe kernel (one call per contiguous range) instead of one
  /// indirect call per point. Off is the ablation axis of bench_native.
  bool native_stripes = true;
  /// Double-buffer the consumer flush: a dedicated flush thread writes
  /// the unrotate instances of hyperplane t while the backend executes
  /// the points of t+1. Applied only when provably safe -- a pool is in
  /// use, the widest consumer read span fits window - 2 slices (the
  /// slice the recurrence writes next cannot evict anything the flush
  /// still reads) and the recurrence reads none of the consumer target
  /// arrays. Output is byte-exact either way; WavefrontStats::
  /// overlapped_flushes reports how many flushes actually overlapped.
  bool overlap_flush = true;
};

struct WavefrontStats {
  int64_t hyperplanes = 0;  // outer time steps executed
  int64_t points = 0;       // recurrence points evaluated
  int64_t flushed = 0;      // consumer equation instances written
  /// Peak number of consumer instances streamed for one hyperplane --
  /// the live-set bound of the consumer-stream layer. The old eager
  /// bucket map held *every* instance of the module live at once; the
  /// stream keeps this per-hyperplane maximum instead, proving the
  /// O(window) storage story extends to the consumer side.
  int64_t peak_bucket_instances = 0;
  /// Chunks executed by a worker other than their owner (WorkStealing
  /// backend only; 0 for the static backends). The load-imbalance
  /// signal: a regular hyperplane steals nothing, an irregular one
  /// steals in proportion to the imbalance the static shards would eat.
  int64_t steals = 0;
  /// Consumer flushes that ran on the flush thread, overlapped with the
  /// next hyperplane's point execution (WavefrontOptions::overlap_flush).
  int64_t overlapped_flushes = 0;
  /// The execution backend in effect (ExecutionBackend::describe()).
  std::string backend;
  /// Why the runner is not on the requested engine tier; empty when the
  /// requested tier is in effect. Set at construction, preserved across
  /// run()s. Native-tier causes are prefixed "native:".
  std::string fallback_reason;
  /// Native tier only: wall time spent inside `cc` building the shared
  /// object (0 on a cache hit).
  double native_compile_ms = 0.0;
  /// Native tier only: the .so came from the object store or the
  /// process-local module cache -- `cc` was not invoked.
  bool native_cache_hit = false;
  /// Native tier only: the module was still loaded in this process (no
  /// dlopen either).
  bool native_in_process_hit = false;
};

/// Executes a hyperplane-transformed module (the output of
/// hyperplane_rewrite) with *windowed* storage for the transformed
/// array -- the paper's preferred section 4 code-generation alternative:
/// "rotate the input array into A'[1], work entirely with the
/// transformed array A' in the recurrence, and unrotate back into the
/// return parameter".
///
/// The runner is the composition of three explicit layers:
///
///  * the **schedule layer** (`HyperplaneSchedule`) lazily enumerates
///    the points of one hyperplane from the exact Fourier-Motzkin
///    bounds -- chunked cursors, no per-hyperplane point vector;
///  * the **consumer-stream layer** (`ConsumerStream`) yields the
///    consumer instances landing on hyperplane t on demand, so the
///    flush state is O(per-hyperplane) instead of O(consumers)
///    (`WavefrontStats::peak_bucket_instances` records the bound);
///  * the **backend layer** (`ExecutionBackend`) runs the points of a
///    hyperplane -- sequentially, chunk-self-scheduled on the pool, or
///    statically sharded with per-worker `WorkerContext`s -- selected
///    via `WavefrontOptions::backend`, bit-exact across all choices.
///
/// Concretely:
///  * A' keeps only `window` hyperplane slices (3 x maxK x M for the
///    relaxation, versus the full (2maxK+2M+1) x maxK x (M+2) box);
///  * the input regions of the combined recurrence (the pulled-back
///    "A[1] = InitialA" guard arm) materialise on demand as the
///    wavefront reaches them -- the rotate-in;
///  * equations reading A' from outside the recurrence (e.g.
///    "newA[I,J] = A'[2maxK+I+J, maxK, I]") are flushed instance by
///    instance as soon as the hyperplane slice they read completes,
///    while it is still live in the window -- the unrotate;
///  * points within one hyperplane carry no dependences, so they run as
///    a DOALL on the backend; hyperplanes are separated by one barrier
///    each, exactly the cost model of the paper's generated loops.
///
/// Exactness of the scan comes from the Fourier-Motzkin `nest`, so no
/// per-point in-domain guard work is spent outside the image.
class WavefrontRunner {
 public:
  /// `transformed` must be the checked hyperplane-rewritten module;
  /// `nest` the exact bounds of its recurrence domain (in
  /// transform.new_vars order, outermost = the hyperplane coordinate).
  /// Throws std::runtime_error for module shapes outside the supported
  /// fragment (multiple recurrences on A', consumer reads spanning more
  /// than the window, record elements).
  WavefrontRunner(const CheckedModule& transformed,
                  const HyperplaneTransform& transform,
                  const LoopNestBounds& nest, IntEnv int_inputs,
                  std::map<std::string, double> real_inputs = {},
                  WavefrontOptions options = {});

  /// Input/output storage; write inputs before run(), read outputs
  /// after. The transformed array itself is windowed and transient.
  [[nodiscard]] NdArray& array(std::string_view name);
  [[nodiscard]] const NdArray& array(std::string_view name) const;

  void run();

  [[nodiscard]] const WavefrontStats& stats() const { return stats_; }

  /// Doubles allocated across all arrays (the memory benches compare
  /// this against the fully allocated interpreter).
  [[nodiscard]] size_t allocated_doubles() const;

  /// The derived (or forced) hyperplane window.
  [[nodiscard]] int64_t window() const { return window_; }

  /// The evaluator actually in use. The tiers degrade Native ->
  /// Bytecode -> TreeWalk: a Native request falls to Bytecode when the
  /// module is outside the native emitter's fragment or no compiler is
  /// usable, and Bytecode falls to TreeWalk exactly as before. The
  /// selection lives in the shared EngineHost.
  [[nodiscard]] EvalEngine engine() const { return host_.engine(); }

  /// Why a lower tier than requested is in effect (empty when the
  /// requested engine runs), rendered "<tier>: <cause>" per step. Also
  /// recorded in stats() so batch reports can surface it.
  [[nodiscard]] const std::string& fallback_reason() const {
    return host_.fallback_reason();
  }

  /// The structured (tier, cause) degradation record behind
  /// fallback_reason() (--batch-report --json surfaces these).
  [[nodiscard]] const std::vector<TierFallback>& fallbacks() const {
    return host_.fallbacks();
  }

  /// Native tier load details (key, cache hits, compile ms); only
  /// meaningful when engine() == Native.
  [[nodiscard]] const NativeLoadInfo& native_info() const {
    return host_.native_info();
  }

  /// The execution backend in effect (ExecutionBackend::describe()).
  [[nodiscard]] std::string backend_description() const;

  /// Lifetime recurrence points per worker context of the backend --
  /// one entry for the sequential backend, per-shard balance for the
  /// sharded one.
  [[nodiscard]] std::vector<int64_t> context_points() const;

 private:
  void execute_pre_equations();
  void execute_hyperplane(int64_t t);
  void flush_hyperplane(int64_t t, WorkerContext& ctx);
  /// True when the flush of hyperplane t may overlap the execution of
  /// t+1 (see WavefrontOptions::overlap_flush). Requires stream_.
  [[nodiscard]] bool overlap_safe() const;
  /// The main hyperplane loop with the dedicated flush thread; assumes
  /// overlap_safe(). Bit-exact with the sequential loop.
  void run_hyperplanes_overlapped(int64_t t_lo, int64_t t_hi);
  void eval_equation_instance(const CheckedEquation& eq,
                              const std::vector<int64_t>& loop_vals,
                              WorkerContext& ctx);

  const CheckedModule& module_;
  const HyperplaneTransform& transform_;
  const LoopNestBounds& nest_;
  IntEnv int_env_;
  std::map<std::string, double> real_inputs_;
  WavefrontOptions options_;

  std::string new_array_;          // "A'"
  size_t recurrence_ = 0;          // equation index defining A'
  std::vector<size_t> pre_;        // equations independent of A'
  std::vector<size_t> consumers_;  // equations reading A'
  int64_t window_ = 0;

  std::map<std::string, NdArray, std::less<>> arrays_;
  WavefrontStats stats_;

  // The three layers (schedule, consumer stream, backend). The stream
  // is built on first run() -- its construction reproduces the old
  // bucket-build error contract (non-affine subscripts and so on throw
  // from run(), not from the constructor).
  std::unique_ptr<HyperplaneSchedule> schedule_;
  std::unique_ptr<ConsumerStream> stream_;
  std::unique_ptr<ExecutionBackend> backend_;
  /// Context for the sequential phases (pre-equations, flushes).
  WorkerContext main_ctx_;

  /// The shared tier ladder: bytecode core, native module + call
  /// operands, and the structured fallback record. The emit callback
  /// the runner hands it wraps emit_native_kernel over the exact nest.
  EngineHost host_;
};

}  // namespace ps
