#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/const_eval.hpp"
#include "frontend/sema.hpp"
#include "runtime/eval_core.hpp"
#include "runtime/native_engine.hpp"
#include "runtime/ndarray.hpp"

namespace ps {

/// One recorded tier degradation: `tier` is the tier that was given up
/// (or deliberately skipped), `cause` says why -- *without* the tier
/// prefix. Renderers print a fallback uniformly as "<tier>: <cause>",
/// so the prefixes are stable across every runner and report.
struct TierFallback {
  EvalEngine tier = EvalEngine::Bytecode;
  std::string cause;
};

struct EngineHostOptions {
  /// Requested tier; the host degrades Native -> Bytecode -> TreeWalk,
  /// recording why each step down happened.
  EvalEngine engine = EvalEngine::Bytecode;
  /// Bytecode VM dispatch strategy for the compiled core.
  BcDispatch dispatch = BcDispatch::Threaded;
  /// Where the native tier persists compiled shared objects; nullptr
  /// compiles without persistence. Ignored unless engine == Native.
  NativeObjectStore* native_store = nullptr;
  /// Scalar binding precedence when a name appears in both input maps:
  /// the flowchart Interpreter historically resolves real_inputs first,
  /// the wavefront runner int_env first. Preserved per client so the
  /// refactor is value-identical for both.
  bool prefer_real_scalars = false;
};

/// The shared execution-tier selector both runtime engines sit on.
///
/// One EngineHost owns the tree-walk -> bytecode -> native ladder that
/// used to live (twice, privately) inside the runners: it compiles the
/// module into the shared EvalCore, binds scalar inputs in both
/// interpretations, drives per-module native compilation and caching
/// through the NativeEngine and the NativeObjectStore, and records
/// every silent tier degradation as a structured TierFallback. Clients
/// supply the one genuinely engine-specific ingredient -- the kernel
/// emitter (`emit_native_kernel` for the wavefront runner,
/// `emit_native_module` for the flowchart interpreter) -- as a
/// callback; everything else (availability probe, scalar binding,
/// unbound-input checks, parameter binding, load/publish, descriptor
/// tables, quickening) is this class.
///
/// Degradation is silent but observable: `engine()` reports the tier in
/// effect, `fallbacks()` the structured causes, `fallback_reason()`
/// their rendered "; "-joined form, exactly the strings the runners
/// used to build by hand.
class EngineHost {
 public:
  /// Emits the native kernel for the module against the dense slot
  /// layout. Throwing std::runtime_error means the module is outside
  /// the emitter's fragment; the host records the cause and falls back
  /// to the bytecode tier.
  using KernelEmitFn = std::function<NativeKernel(const BcLayout&)>;

  /// Run the tier ladder once. `arrays` must hold the client's NdArray
  /// storage for every non-scalar data item (the NdArrays must not move
  /// afterwards -- the native descriptor table points into them);
  /// `int_env` / `real_inputs` bind the scalar inputs. A Native request
  /// tries `emit`, degrading to Bytecode on any failure; a Bytecode
  /// request (or the degraded path) compiles the EvalCore, degrading to
  /// TreeWalk when the module or its bindings are outside the bytecode
  /// fragment; a TreeWalk request skips both compiled tiers and records
  /// "engine requested". All referenced module state must outlive the
  /// host.
  void select(const CheckedModule& module,
              std::map<std::string, NdArray, std::less<>>& arrays,
              const IntEnv& int_env,
              const std::map<std::string, double>& real_inputs,
              const EngineHostOptions& options, KernelEmitFn emit);

  /// The evaluator actually in effect after select().
  [[nodiscard]] EvalEngine engine() const {
    if (use_native_) return EvalEngine::Native;
    return use_bytecode_ ? EvalEngine::Bytecode : EvalEngine::TreeWalk;
  }
  [[nodiscard]] bool native_ready() const { return use_native_; }
  [[nodiscard]] bool bytecode_ready() const { return use_bytecode_; }

  /// Rendered degradation causes ("<tier>: <cause>" joined with "; ");
  /// empty when the requested tier runs.
  [[nodiscard]] const std::string& fallback_reason() const {
    return rendered_;
  }
  /// The structured (tier, cause) pairs behind fallback_reason().
  [[nodiscard]] const std::vector<TierFallback>& fallbacks() const {
    return fallbacks_;
  }
  /// Native tier load details (key, cache hits, compile ms); only
  /// meaningful when engine() == Native or a native load was attempted.
  [[nodiscard]] const NativeLoadInfo& native_info() const {
    return native_info_;
  }

  /// The shared bytecode core (compiled iff bytecode_ready()).
  [[nodiscard]] EvalCore& core() { return core_; }
  [[nodiscard]] const EvalCore& core() const { return core_; }

  /// The loaded native module and its call operands (valid iff
  /// native_ready()): psc_arr descriptors in array-slot order, both
  /// scalar interpretations in scalar-slot order, and the bound P[]
  /// parameter values in NativeKernel::param_names order.
  [[nodiscard]] NativeModule* native_module() const { return native_.get(); }
  [[nodiscard]] PscArr* native_arrays() { return native_arrs_.data(); }
  [[nodiscard]] int64_t* native_ints() { return native_ints_.data(); }
  [[nodiscard]] double* native_reals() { return native_reals_.data(); }
  [[nodiscard]] const int64_t* native_params() const {
    return native_params_.data();
  }

  /// The dense slot layout of the module (valid after select()).
  [[nodiscard]] const BcLayout& layout() const { return layout_; }

  /// Write both interpretations of a scalar through to every live tier
  /// (the compiled core's slot and the native operand vectors). The
  /// clients' mid-run scalar-target writes funnel through this.
  void set_scalar(size_t data_index, int64_t as_int, double as_real);

  /// Render one structured fallback the way fallback_reason() does.
  [[nodiscard]] static std::string render(const TierFallback& fallback);

 private:
  void record_fallback(EvalEngine tier, std::string cause);
  void setup_native(const KernelEmitFn& emit);
  void setup_bytecode();
  /// Bind a scalar input from the input maps in the client's precedence
  /// order; returns false when the name is bound by neither.
  bool bind_scalar_input(const std::string& name, int64_t& as_int,
                         double& as_real) const;
  /// True when `data_index` is the target of some equation (such
  /// scalars are computed mid-run, so being unbound up front is fine).
  [[nodiscard]] bool is_equation_target(size_t data_index) const;

  const CheckedModule* module_ = nullptr;
  std::map<std::string, NdArray, std::less<>>* arrays_ = nullptr;
  const IntEnv* int_env_ = nullptr;
  const std::map<std::string, double>* real_inputs_ = nullptr;
  EngineHostOptions options_;
  BcLayout layout_;

  EvalCore core_;
  bool use_bytecode_ = false;

  std::shared_ptr<NativeModule> native_;
  NativeLoadInfo native_info_;
  std::vector<PscArr> native_arrs_;
  std::vector<int64_t> native_ints_;
  std::vector<double> native_reals_;
  std::vector<int64_t> native_params_;
  bool use_native_ = false;

  std::vector<TierFallback> fallbacks_;
  std::string rendered_;
};

/// Input-free tier probe for compile-time reports (--verbose, batch
/// reports, cached artifacts): which compiled tier the module's
/// *equations* reach, ignoring scalar bindings (those are a property of
/// one run, not of the unit). `tier` is "bytecode" when the bytecode
/// compiler covers the module, "tree-walk" otherwise, with the rendered
/// "<tier>: <cause>" in `fallback`.
struct EngineTierProbe {
  std::string tier;
  std::string fallback;  // empty when the bytecode tier compiles
};

[[nodiscard]] EngineTierProbe probe_engine_tier(const CheckedModule& module);

}  // namespace ps
