#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/sema.hpp"

namespace ps {

/// Stack bytecode for PS expressions.
///
/// The tree-walking evaluator costs a virtual dispatch, a tag check and
/// often a map lookup per AST node; for the stencil equations the benches
/// execute millions of times that dominates runtime. Sema's type
/// annotations let us compile each equation once into statically typed
/// stack code (no runtime tags): integer and real operations are separate
/// opcodes, conversions are explicit, and scalar/array operands are
/// pre-resolved to dense slot indices.
enum class BcOp : uint8_t {
  PushInt,    // imm
  PushReal,   // dimm
  LoadVar,    // a = index into the program's variable-name table
  LoadScalarI,  // a = scalar slot
  LoadScalarD,
  LoadArrayI,  // a = array slot, b = rank; pops rank ints, pushes int
  LoadArrayD,  //                                      ... pushes double
  IntToReal,
  AddI, SubI, MulI, DivI, ModI, NegI,
  AddD, SubD, MulD, DivD, NegD,
  CmpEqI, CmpNeI, CmpLtI, CmpLeI, CmpGtI, CmpGeI,
  CmpEqD, CmpNeD, CmpLtD, CmpLeD, CmpGtD, CmpGeD,
  NotB,
  JumpIfFalse,  // a = absolute target pc; pops condition
  Jump,         // a = absolute target pc
  AbsI, AbsD, MinI, MaxI, MinD, MaxD,
  Sqrt, Sin, Cos, Exp, Ln, FloorD, CeilD,
  Halt,
};

struct BcInstr {
  BcOp op;
  int32_t a = 0;
  int32_t b = 0;
  int64_t imm = 0;
  double dimm = 0;
};

/// One compiled expression. `result_real` records whether the value left
/// on the stack is a double (else an int64, with booleans as 0/1).
struct BcProgram {
  std::vector<BcInstr> code;
  std::vector<std::string> var_names;  // LoadVar operands
  bool result_real = false;
  size_t max_stack = 0;

  [[nodiscard]] std::string disassemble() const;
};

/// Slot assignment shared by all programs of one module: scalar data
/// items and arrays are numbered by their position in CheckedModule::data.
struct BcLayout {
  /// data index -> scalar slot (or -1); scalar slot count.
  std::vector<int32_t> scalar_slot;
  std::vector<int32_t> array_slot;
  int32_t scalar_count = 0;
  int32_t array_count = 0;

  static BcLayout for_module(const CheckedModule& module);
};

/// Compile one (elaborated, type-annotated) expression. Throws
/// std::runtime_error on unsupported constructs (record fields).
[[nodiscard]] BcProgram compile_expr(const Expr& expr,
                                     const CheckedModule& module,
                                     const BcLayout& layout);

/// Constant-fold a compiled program in place: any operation whose
/// operands are literal pushes is evaluated at compile time and replaced
/// with a single push (iterated to a fixpoint, so whole constant
/// subtrees collapse -- `1 + 2 * 3` becomes `PushInt 7`). Jump targets
/// are remapped; spans that a jump lands inside are left alone. The
/// folded value is computed with exactly the operation the VM would
/// execute, so results are bit-identical. `div`/`mod` by a constant zero
/// is not folded (the runtime error is preserved).
///
/// EvalCore::compile applies this to every equation program -- the
/// ROADMAP's "constant-fold subscript programs": fixed LHS subscripts
/// and the int-literal arithmetic inside stencil RHS programs (e.g. the
/// `IntToReal(PushInt 4)` of `/ 4`) shrink by one or more dispatches per
/// instance on the hottest path.
///
/// Returns the number of instructions eliminated.
size_t fold_constants(BcProgram& program);

}  // namespace ps
