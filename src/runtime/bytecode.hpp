#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/sema.hpp"

namespace ps {

/// Stack bytecode for PS expressions.
///
/// The tree-walking evaluator costs a virtual dispatch, a tag check and
/// often a map lookup per AST node; for the stencil equations the benches
/// execute millions of times that dominates runtime. Sema's type
/// annotations let us compile each equation once into statically typed
/// stack code (no runtime tags): integer and real operations are separate
/// opcodes, conversions are explicit, and scalar/array operands are
/// pre-resolved to dense slot indices.
///
/// The opcode list is an X-macro so the enum, the disassembler's name
/// table and the direct-threaded dispatch table in eval_core.cpp are
/// generated from one source and cannot drift apart.
///
/// The ops after NotB up to Halt are *superinstructions*: fusions of the
/// hot pairs/triples the stencil kernels execute per point, produced by
/// fuse_superinstructions() after constant folding. The expression
/// compiler never emits them directly.
#define PS_BC_OPCODES(X)                                                     \
  X(PushInt)     /* imm */                                                   \
  X(PushReal)    /* dimm */                                                  \
  X(LoadVar)     /* a = index into the program's variable-name table */     \
  X(LoadScalarI) /* a = scalar slot */                                      \
  X(LoadScalarD)                                                             \
  X(LoadArrayI)  /* a = array slot, b = rank; pops rank ints, pushes int */ \
  X(LoadArrayD)  /*                                      ... pushes dbl */  \
  X(IntToReal)                                                               \
  X(AddI) X(SubI) X(MulI) X(DivI) X(ModI) X(NegI)                            \
  X(AddD) X(SubD) X(MulD) X(DivD) X(NegD)                                    \
  X(CmpEqI) X(CmpNeI) X(CmpLtI) X(CmpLeI) X(CmpGtI) X(CmpGeI)                \
  X(CmpEqD) X(CmpNeD) X(CmpLtD) X(CmpLeD) X(CmpGtD) X(CmpGeD)                \
  X(NotB)                                                                    \
  X(JumpIfFalse) /* a = absolute target pc; pops condition */               \
  X(Jump)        /* a = absolute target pc */                               \
  X(AbsI) X(AbsD) X(MinI) X(MaxI) X(MinD) X(MaxD)                            \
  X(Sqrt) X(Sin) X(Cos) X(Exp) X(Ln) X(FloorD) X(CeilD)                      \
  /* -- superinstructions (emitted by fuse_superinstructions only) -- */    \
  X(LoadVarAddImm)  /* a = var index, imm = wrapping addend */              \
  X(LoadArrayVarsI) /* a = slot, b = rank<=4, imm = packed (var,off) */     \
  X(LoadArrayVarsD)                                                          \
  X(CmpEqIJf) /* pops 2 ints; a = target pc taken when NOT equal */         \
  X(CmpNeIJf) X(CmpLtIJf) X(CmpLeIJf) X(CmpGtIJf) X(CmpGeIJf)                \
  X(Halt)

enum class BcOp : uint8_t {
#define PS_BC_ENUMERATOR(name) name,
  PS_BC_OPCODES(PS_BC_ENUMERATOR)
#undef PS_BC_ENUMERATOR
};

/// Number of opcodes (sizes the direct-threaded dispatch table).
inline constexpr size_t kBcOpCount = static_cast<size_t>(BcOp::Halt) + 1;

/// Wrapping two's-complement arithmetic helpers. Signed overflow is UB
/// in C++, so both the VM's integer ops and the constant folder compute
/// through uint64_t: folded and unfolded programs stay bit-identical
/// even on INT64 extremes.
constexpr int64_t bc_wrap_add(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
constexpr int64_t bc_wrap_sub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
constexpr int64_t bc_wrap_mul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}
constexpr int64_t bc_wrap_neg(int64_t a) {
  return static_cast<int64_t>(0u - static_cast<uint64_t>(a));
}

/// True when `d` converts to int64_t without UB: finite and inside
/// [-2^63, 2^63). NaN fails both comparisons.
constexpr bool bc_double_fits_int64(double d) {
  return d >= -9223372036854775808.0 && d < 9223372036854775808.0;
}

/// Defined double -> int64 conversion for the `floor`/`ceil`
/// intrinsics: saturates out-of-range values, maps NaN to 0. A raw
/// static_cast is UB outside the representable range (and x86 vs ARM
/// hardware disagree), which would break the engines' bit-exactness
/// contract; every evaluator (bytecode VM and tree walk) converts
/// through this helper so they agree on every platform.
constexpr int64_t bc_double_to_int64(double d) {
  if (!(d == d)) return 0;  // NaN
  if (!bc_double_fits_int64(d))
    return d < 0.0 ? std::numeric_limits<int64_t>::min()
                   : std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(d);
}

struct BcInstr {
  BcOp op;
  int32_t a = 0;
  int32_t b = 0;
  int64_t imm = 0;
  double dimm = 0;
};

/// One compiled expression. `result_real` records whether the value left
/// on the stack is a double (else an int64, with booleans as 0/1).
struct BcProgram {
  std::vector<BcInstr> code;
  std::vector<std::string> var_names;  // LoadVar operands
  bool result_real = false;
  size_t max_stack = 0;

  [[nodiscard]] std::string disassemble() const;
};

/// True when `item` stores record values. Record items live in array
/// slots at any rank (a rank-0 record is a 1-d array over its fields):
/// storage appends one trailing dimension indexed by field ordinal
/// (lo 0, extent = field count), so a field access is an ordinary
/// array load with one extra subscript and every engine tier shares
/// the addressing.
[[nodiscard]] inline bool bc_is_record_item(const DataItem& item) {
  return item.elem != nullptr && item.elem->kind == TypeKind::Record;
}

/// Field ordinal of `field` within record type `rec`; -1 when absent.
[[nodiscard]] inline int64_t bc_record_field_ordinal(const Type& rec,
                                                     std::string_view field) {
  for (size_t i = 0; i < rec.fields.size(); ++i)
    if (rec.fields[i].first == field) return static_cast<int64_t>(i);
  return -1;
}

/// Slot assignment shared by all programs of one module: scalar data
/// items and arrays are numbered by their position in CheckedModule::data.
/// Record items always take array slots (see bc_is_record_item).
struct BcLayout {
  /// data index -> scalar slot (or -1); scalar slot count.
  std::vector<int32_t> scalar_slot;
  std::vector<int32_t> array_slot;
  int32_t scalar_count = 0;
  int32_t array_count = 0;

  static BcLayout for_module(const CheckedModule& module);
};

/// Compile one (elaborated, type-annotated) expression. Throws
/// std::runtime_error on unsupported constructs (whole-record values
/// outside a field projection, nested record fields).
[[nodiscard]] BcProgram compile_expr(const Expr& expr,
                                     const CheckedModule& module,
                                     const BcLayout& layout);

/// Compile the projection of field `ordinal` out of the record-valued
/// `expr` (the RHS of a record-target equation). The supported
/// record-valued shapes are names, array elements and conditionals over
/// them; anything else throws like compile_expr.
[[nodiscard]] BcProgram compile_record_field_expr(const Expr& expr,
                                                  size_t ordinal,
                                                  const CheckedModule& module,
                                                  const BcLayout& layout);

/// Constant-fold a compiled program in place: any operation whose
/// operands are literal pushes is evaluated at compile time and replaced
/// with a single push (iterated to a fixpoint, so whole constant
/// subtrees collapse -- `1 + 2 * 3` becomes `PushInt 7`). Jump targets
/// are remapped; spans that a jump lands inside are left alone. The
/// folded value is computed with exactly the operation the VM would
/// execute (wrapping integer arithmetic included), so results are
/// bit-identical. `div`/`mod` by a constant zero is not folded (the
/// runtime error is preserved), and `floor`/`ceil` of a double outside
/// the int64 range stays an instruction rather than folding through an
/// undefined conversion.
///
/// EvalCore::compile applies this to every equation program -- the
/// ROADMAP's "constant-fold subscript programs": fixed LHS subscripts
/// and the int-literal arithmetic inside stencil RHS programs (e.g. the
/// `IntToReal(PushInt 4)` of `/ 4`) shrink by one or more dispatches per
/// instance on the hottest path.
///
/// Returns the number of instructions eliminated.
size_t fold_constants(BcProgram& program);

/// Peephole superinstruction fusion, run by EvalCore::compile after
/// fold_constants. Replaces the stencil-kernel hot sequences with single
/// fused opcodes (jump targets remapped exactly like the folder's
/// splice; spans a jump lands inside are left alone):
///
///   LoadVar v; PushInt c; AddI|SubI          ->  LoadVarAddImm v, +-c
///   CmpXxI; JumpIfFalse t                    ->  CmpXxIJf t
///   <rank x LoadVar|LoadVarAddImm>; LoadArray ->  LoadArrayVars
///
/// The array fusion packs up to 4 (var index, signed 8-bit offset)
/// pairs into the 64-bit immediate, so a full stencil read like
/// `g[K-1, I, J-1]` costs one dispatch instead of four. Fused integer
/// arithmetic wraps, matching the plain VM ops bit for bit.
///
/// Returns the number of instructions eliminated.
size_t fuse_superinstructions(BcProgram& program);

}  // namespace ps
