#pragma once

#include <cstdint>
#include <string>

#include "core/const_eval.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

/// Schedule layer of the wavefront engine: the iteration structure of
/// a hyperplane-transformed module, derived from the exact
/// Fourier-Motzkin nest the `transform/` passes produce.
///
/// The outermost nest level is the hyperplane coordinate t; the inner
/// levels are the DOALL points within one hyperplane. The schedule
/// never materialises a per-hyperplane point vector: backends pull the
/// points of hyperplane t through `NestCursor`s (O(depth) state each)
/// and may seek a cursor to any point index to claim a stripe, so the
/// engine's working memory stays O(window) however large a hyperplane
/// grows.
class HyperplaneSchedule {
 public:
  /// `nest` must be in transformed-variable order (outermost = the
  /// hyperplane coordinate) and must outlive the schedule; `params`
  /// binds every symbolic module parameter the bounds mention.
  HyperplaneSchedule(const LoopNestBounds& nest, IntEnv params);

  /// Inclusive hyperplane (time) range of the recurrence.
  [[nodiscard]] int64_t t_lo() const { return t_lo_; }
  [[nodiscard]] int64_t t_hi() const { return t_hi_; }

  /// Loop depth inside one hyperplane (nest depth minus the hyperplane
  /// level; 0 means one point per hyperplane).
  [[nodiscard]] size_t inner_dims() const { return inner_dims_; }

  /// Number of points on hyperplane `t`, counted row by row without
  /// enumerating the innermost level.
  [[nodiscard]] int64_t count_points(int64_t t) const;

  /// A fresh cursor over the inner coordinates of hyperplane `t`.
  /// Call next() to reach the first point; use skip() to seek.
  [[nodiscard]] NestCursor cursor(int64_t t) const;

  [[nodiscard]] const LoopNestBounds& nest() const { return *nest_; }
  [[nodiscard]] const IntEnv& params() const { return params_; }

 private:
  const LoopNestBounds* nest_;
  IntEnv params_;
  size_t inner_dims_ = 0;
  int64_t t_lo_ = 0;
  int64_t t_hi_ = -1;
};

}  // namespace ps
