#include "runtime/wavefront_schedule.hpp"

#include <stdexcept>

namespace ps {

HyperplaneSchedule::HyperplaneSchedule(const LoopNestBounds& nest,
                                       IntEnv params)
    : nest_(&nest), params_(std::move(params)) {
  if (nest.levels.empty())
    throw std::runtime_error("wavefront: exact-bounds nest is empty");
  inner_dims_ = nest.levels.size() - 1;
  t_lo_ = nest.levels[0].lower(params_);
  t_hi_ = nest.levels[0].upper(params_);
}

int64_t HyperplaneSchedule::count_points(int64_t t) const {
  IntEnv env = params_;
  env[nest_->levels[0].var] = t;
  return NestCursor::count(*nest_, 1, std::move(env));
}

NestCursor HyperplaneSchedule::cursor(int64_t t) const {
  IntEnv env = params_;
  env[nest_->levels[0].var] = t;
  return NestCursor(*nest_, 1, std::move(env));
}

}  // namespace ps
