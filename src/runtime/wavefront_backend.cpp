#include "runtime/wavefront_backend.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <stdexcept>

namespace ps {

namespace {

/// The parallel backends divide work by HyperplaneSchedule's row-summed
/// point count and then pull points through cursors; if the two ever
/// disagreed (drift between NestCursor::count and the cursor walk over
/// the same bounds), a chunk would silently execute fewer points than
/// claimed. Fail loudly instead -- the old materialised point vector
/// made count and execution inherently consistent, and this check
/// restores that invariant.
void check_full_coverage(int64_t executed, int64_t count) {
  if (executed != count)
    throw std::runtime_error(
        "wavefront: schedule cursor enumerated " + std::to_string(executed) +
        " hyperplane points where the bounds count " + std::to_string(count));
}

/// Position `ctx.vals` as {t, coords...} and run the body over `count`
/// consecutive points starting at the cursor's current point. The
/// cursor must already stand on the first point to execute. Returns the
/// number of points actually executed (== count unless the space is
/// exhausted early; callers with a precomputed count assert coverage
/// via check_full_coverage).
int64_t run_span(WorkerContext& ctx, NestCursor& cursor, int64_t t,
                 int64_t count, const PointBody& body) {
  const std::vector<int64_t>& coords = cursor.coords();
  ctx.vals.resize(coords.size() + 1);
  ctx.vals[0] = t;
  int64_t executed = 0;
  while (true) {
    std::copy(coords.begin(), coords.end(), ctx.vals.begin() + 1);
    body(ctx);
    ++executed;
    if (executed == count || !cursor.next()) break;
  }
  ctx.points += executed;
  return executed;
}

class SequentialBackend final : public ExecutionBackend {
 public:
  std::string describe() const override { return "sequential"; }

  int64_t run_hyperplane(const HyperplaneSchedule& schedule, int64_t t,
                         const PointBody& body) override {
    NestCursor cursor = schedule.cursor(t);
    if (!cursor.next()) return 0;
    return run_span(context_, cursor, t,
                    std::numeric_limits<int64_t>::max(), body);
  }

  int64_t run_hyperplane_stripes(const HyperplaneSchedule& schedule, int64_t t,
                                 const StripeBody& body) override {
    const int64_t count = schedule.count_points(t);
    if (count <= 0) return 0;
    int64_t executed = body(context_, 0, count);
    context_.points += executed;
    check_full_coverage(executed, count);
    return executed;
  }

  std::vector<int64_t> context_points() const override {
    return {context_.points};
  }

  void reset_counters() override { context_.points = 0; }

 private:
  WorkerContext context_;
};

/// Today's parallel_for_chunked path, with the thread_local scratch
/// replaced by a free list of explicit contexts: each chunk claims a
/// context (at most pool-size chunks are in flight, so the list never
/// runs dry), seeks a fresh cursor to its range and streams it.
class PooledChunkedBackend final : public ExecutionBackend {
 public:
  explicit PooledChunkedBackend(ThreadPool* pool)
      : pool_(pool), contexts_(pool == nullptr ? 1 : pool->size()) {
    free_.reserve(contexts_.size());
    for (size_t c = contexts_.size(); c-- > 0;) free_.push_back(c);
  }

  std::string describe() const override {
    return "pooled-chunked (" + std::to_string(contexts_.size()) +
           " workers)";
  }

  int64_t run_hyperplane(const HyperplaneSchedule& schedule, int64_t t,
                         const PointBody& body) override {
    const int64_t count = schedule.count_points(t);
    if (count <= 0) return 0;
    if (pool_ == nullptr || count == 1) {
      NestCursor cursor = schedule.cursor(t);
      int64_t executed =
          cursor.next() ? run_span(contexts_[0], cursor, t, count, body) : 0;
      check_full_coverage(executed, count);
      return executed;
    }

    std::atomic<int64_t> executed{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    pool_->parallel_for_chunked(0, count, [&](int64_t from, int64_t to) {
      size_t slot = acquire();
      try {
        NestCursor cursor = schedule.cursor(t);
        if (cursor.next() && (from == 0 || cursor.skip(from) == from))
          executed.fetch_add(
              run_span(contexts_[slot], cursor, t, to - from, body),
              std::memory_order_relaxed);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      release(slot);
    });
    if (error) std::rethrow_exception(error);
    int64_t done = executed.load(std::memory_order_relaxed);
    check_full_coverage(done, count);
    return done;
  }

  int64_t run_hyperplane_stripes(const HyperplaneSchedule& schedule, int64_t t,
                                 const StripeBody& body) override {
    const int64_t count = schedule.count_points(t);
    if (count <= 0) return 0;
    if (pool_ == nullptr || count == 1) {
      int64_t executed = body(contexts_[0], 0, count);
      contexts_[0].points += executed;
      check_full_coverage(executed, count);
      return executed;
    }

    std::atomic<int64_t> executed{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    pool_->parallel_for_chunked(0, count, [&](int64_t from, int64_t to) {
      size_t slot = acquire();
      try {
        int64_t done = body(contexts_[slot], from, to);
        contexts_[slot].points += done;
        executed.fetch_add(done, std::memory_order_relaxed);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      release(slot);
    });
    if (error) std::rethrow_exception(error);
    int64_t done = executed.load(std::memory_order_relaxed);
    check_full_coverage(done, count);
    return done;
  }

  std::vector<int64_t> context_points() const override {
    std::vector<int64_t> points;
    points.reserve(contexts_.size());
    for (const WorkerContext& ctx : contexts_) points.push_back(ctx.points);
    return points;
  }

  void reset_counters() override {
    for (WorkerContext& ctx : contexts_) ctx.points = 0;
  }

 private:
  size_t acquire() {
    std::lock_guard<std::mutex> lock(free_mutex_);
    size_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  void release(size_t slot) {
    std::lock_guard<std::mutex> lock(free_mutex_);
    free_.push_back(slot);
  }

  ThreadPool* pool_;
  std::vector<WorkerContext> contexts_;
  std::vector<size_t> free_;
  std::mutex free_mutex_;
};

/// Static point striping: shard w always executes the contiguous range
/// [w*count/W, (w+1)*count/W) of each hyperplane on its own context.
/// No claiming traffic inside a hyperplane, shard-stable scratch, and a
/// per-shard point counter the stats report as shard balance.
class ShardedBackend final : public ExecutionBackend {
 public:
  ShardedBackend(ThreadPool* pool, size_t shards)
      : pool_(pool),
        contexts_(shards > 0         ? shards
                  : pool_ != nullptr ? pool_->size()
                                     : 1) {}

  std::string describe() const override {
    return "sharded (" + std::to_string(contexts_.size()) + " shards)";
  }

  int64_t run_hyperplane(const HyperplaneSchedule& schedule, int64_t t,
                         const PointBody& body) override {
    const int64_t count = schedule.count_points(t);
    if (count <= 0) return 0;
    const int64_t shards = static_cast<int64_t>(contexts_.size());

    std::atomic<int64_t> executed{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto run_shard = [&](int64_t w) {
      const int64_t begin = w * count / shards;
      const int64_t end = (w + 1) * count / shards;
      if (begin >= end) return;
      try {
        NestCursor cursor = schedule.cursor(t);
        if (cursor.next() && (begin == 0 || cursor.skip(begin) == begin))
          executed.fetch_add(run_span(contexts_[static_cast<size_t>(w)],
                                      cursor, t, end - begin, body),
                             std::memory_order_relaxed);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    };
    if (pool_ != nullptr && shards > 1 && count > 1) {
      pool_->parallel_tasks(shards, run_shard);
    } else {
      for (int64_t w = 0; w < shards; ++w) run_shard(w);
    }
    if (error) std::rethrow_exception(error);
    int64_t done = executed.load(std::memory_order_relaxed);
    check_full_coverage(done, count);
    return done;
  }

  int64_t run_hyperplane_stripes(const HyperplaneSchedule& schedule, int64_t t,
                                 const StripeBody& body) override {
    const int64_t count = schedule.count_points(t);
    if (count <= 0) return 0;
    const int64_t shards = static_cast<int64_t>(contexts_.size());

    std::atomic<int64_t> executed{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto run_shard = [&](int64_t w) {
      const int64_t begin = w * count / shards;
      const int64_t end = (w + 1) * count / shards;
      if (begin >= end) return;
      try {
        WorkerContext& ctx = contexts_[static_cast<size_t>(w)];
        int64_t done = body(ctx, begin, end);
        ctx.points += done;
        executed.fetch_add(done, std::memory_order_relaxed);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    };
    if (pool_ != nullptr && shards > 1 && count > 1) {
      pool_->parallel_tasks(shards, run_shard);
    } else {
      for (int64_t w = 0; w < shards; ++w) run_shard(w);
    }
    if (error) std::rethrow_exception(error);
    int64_t done = executed.load(std::memory_order_relaxed);
    check_full_coverage(done, count);
    return done;
  }

  std::vector<int64_t> context_points() const override {
    std::vector<int64_t> points;
    points.reserve(contexts_.size());
    for (const WorkerContext& ctx : contexts_) points.push_back(ctx.points);
    return points;
  }

  void reset_counters() override {
    for (WorkerContext& ctx : contexts_) ctx.points = 0;
  }

 private:
  ThreadPool* pool_;
  std::vector<WorkerContext> contexts_;
};

/// Work stealing over point-range chunks. The hyperplane's [0, count)
/// range is cut into chunks of ~count/(W*8) points; worker w initially
/// owns the contiguous band [w*nchunks/W, (w+1)*nchunks/W). Each band
/// is a tiny Chase-Lev-style deque packed into one atomic word
/// ({head, tail} relative chunk indices): the owner claims from the
/// front, idle workers claim from the back of a victim's band. Nothing
/// is ever pushed after setup, so claims only move the two indices
/// toward each other and a single CAS per claim is race-free (no ABA:
/// indices are monotone within a hyperplane). Regular hyperplanes run
/// like the sharded backend (everyone drains their own band, zero
/// steals); irregular per-point costs rebalance through the steals.
class WorkStealingBackend final : public ExecutionBackend {
 public:
  WorkStealingBackend(ThreadPool* pool, size_t workers)
      : pool_(pool),
        contexts_(workers > 0       ? workers
                  : pool != nullptr ? pool->size()
                                    : 1),
        bands_(contexts_.size()) {}

  std::string describe() const override {
    return "work-stealing (" + std::to_string(contexts_.size()) +
           " workers)";
  }

  int64_t run_hyperplane(const HyperplaneSchedule& schedule, int64_t t,
                         const PointBody& body) override {
    return run_all(schedule, t,
                   [&](WorkerContext& ctx, int64_t from, int64_t to) {
                     NestCursor cursor = schedule.cursor(t);
                     if (!cursor.next()) return int64_t{0};
                     if (from != 0 && cursor.skip(from) != from)
                       return int64_t{0};
                     return run_span(ctx, cursor, t, to - from, body);
                   });
  }

  int64_t run_hyperplane_stripes(const HyperplaneSchedule& schedule, int64_t t,
                                 const StripeBody& body) override {
    return run_all(schedule, t,
                   [&](WorkerContext& ctx, int64_t from, int64_t to) {
                     int64_t done = body(ctx, from, to);
                     ctx.points += done;
                     return done;
                   });
  }

  std::vector<int64_t> context_points() const override {
    std::vector<int64_t> points;
    points.reserve(contexts_.size());
    for (const WorkerContext& ctx : contexts_) points.push_back(ctx.points);
    return points;
  }

  void reset_counters() override {
    for (WorkerContext& ctx : contexts_) ctx.points = 0;
    steals_.store(0, std::memory_order_relaxed);
  }

  int64_t steal_count() const override {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One worker's chunk band: head (claimed by the owner) in the high
  /// 32 bits, tail (claimed by thieves) in the low 32, both relative to
  /// `base`. Padded so concurrent claims on neighbouring bands never
  /// share a cache line.
  struct alignas(64) Band {
    std::atomic<uint64_t> state{0};
    int64_t base = 0;
  };

  static bool claim_front(Band& band, int64_t* rel) {
    uint64_t s = band.state.load(std::memory_order_acquire);
    while (true) {
      const uint32_t head = static_cast<uint32_t>(s >> 32);
      const uint32_t tail = static_cast<uint32_t>(s);
      if (head >= tail) return false;
      const uint64_t next = (static_cast<uint64_t>(head + 1) << 32) | tail;
      if (band.state.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        *rel = head;
        return true;
      }
    }
  }

  static bool claim_back(Band& band, int64_t* rel) {
    uint64_t s = band.state.load(std::memory_order_acquire);
    while (true) {
      const uint32_t head = static_cast<uint32_t>(s >> 32);
      const uint32_t tail = static_cast<uint32_t>(s);
      if (head >= tail) return false;
      const uint64_t next = (static_cast<uint64_t>(head) << 32) | (tail - 1);
      if (band.state.compare_exchange_weak(s, next, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        *rel = static_cast<int64_t>(tail) - 1;
        return true;
      }
    }
  }

  template <typename ChunkFn>
  int64_t run_all(const HyperplaneSchedule& schedule, int64_t t,
                  const ChunkFn& chunk_fn) {
    const int64_t count = schedule.count_points(t);
    if (count <= 0) return 0;
    const int64_t workers = static_cast<int64_t>(contexts_.size());
    // ~8 chunks per worker so a cost skew of a few chunks still
    // balances; the tail index must fit 32 bits, so clamp the chunk
    // count on (absurdly) large hyperplanes.
    constexpr int64_t kMaxChunks = int64_t{1} << 30;
    const int64_t chunk =
        std::max({int64_t{1}, count / (workers * 8),
                  (count + kMaxChunks - 1) / kMaxChunks});
    const int64_t nchunks = (count + chunk - 1) / chunk;
    for (int64_t w = 0; w < workers; ++w) {
      const int64_t lo = w * nchunks / workers;
      const int64_t hi = (w + 1) * nchunks / workers;
      bands_[static_cast<size_t>(w)].base = lo;
      bands_[static_cast<size_t>(w)].state.store(
          static_cast<uint64_t>(hi - lo), std::memory_order_relaxed);
    }
    const bool threaded = pool_ != nullptr && workers > 1 && count > 1;

    std::atomic<int64_t> executed{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto worker_fn = [&](int64_t w) {
      WorkerContext& ctx = contexts_[static_cast<size_t>(w)];
      int64_t done = 0;
      int64_t stolen = 0;
      auto run_chunk = [&](int64_t global) {
        const int64_t from = global * chunk;
        const int64_t to = std::min(count, from + chunk);
        done += chunk_fn(ctx, from, to);
      };
      try {
        int64_t rel = 0;
        Band& own = bands_[static_cast<size_t>(w)];
        while (claim_front(own, &rel)) run_chunk(own.base + rel);
        // Inline (no pool) runs drain every band in turn through its
        // owner above; stealing would just misattribute the counters.
        if (threaded) {
          bool found = true;
          while (found) {
            found = false;
            for (int64_t v = 1; v < workers && !found; ++v) {
              Band& victim =
                  bands_[static_cast<size_t>((w + v) % workers)];
              if (claim_back(victim, &rel)) {
                ++stolen;
                run_chunk(victim.base + rel);
                found = true;  // rescan from the nearest victim
              }
            }
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      executed.fetch_add(done, std::memory_order_relaxed);
      if (stolen > 0) steals_.fetch_add(stolen, std::memory_order_relaxed);
    };
    if (threaded) {
      pool_->parallel_tasks(workers, worker_fn);
    } else {
      for (int64_t w = 0; w < workers; ++w) worker_fn(w);
    }
    if (error) std::rethrow_exception(error);
    int64_t done = executed.load(std::memory_order_relaxed);
    check_full_coverage(done, count);
    return done;
  }

  ThreadPool* pool_;
  std::vector<WorkerContext> contexts_;
  std::vector<Band> bands_;
  std::atomic<int64_t> steals_{0};
};

}  // namespace

const char* wavefront_backend_name(WavefrontBackend backend) {
  switch (backend) {
    case WavefrontBackend::Auto:
      return "auto";
    case WavefrontBackend::Sequential:
      return "sequential";
    case WavefrontBackend::PooledChunked:
      return "pooled";
    case WavefrontBackend::Sharded:
      return "sharded";
    case WavefrontBackend::WorkStealing:
      return "stealing";
  }
  return "auto";
}

std::optional<WavefrontBackend> parse_wavefront_backend(
    std::string_view name) {
  if (name == "auto") return WavefrontBackend::Auto;
  if (name == "sequential") return WavefrontBackend::Sequential;
  if (name == "pooled") return WavefrontBackend::PooledChunked;
  if (name == "sharded") return WavefrontBackend::Sharded;
  if (name == "stealing") return WavefrontBackend::WorkStealing;
  return std::nullopt;
}

std::unique_ptr<ExecutionBackend> make_wavefront_backend(
    WavefrontBackend kind, ThreadPool* pool, size_t shards) {
  if (kind == WavefrontBackend::Auto)
    kind = pool != nullptr ? WavefrontBackend::PooledChunked
                           : WavefrontBackend::Sequential;
  switch (kind) {
    case WavefrontBackend::Sequential:
      return std::make_unique<SequentialBackend>();
    case WavefrontBackend::PooledChunked:
      return std::make_unique<PooledChunkedBackend>(pool);
    case WavefrontBackend::Sharded:
      return std::make_unique<ShardedBackend>(pool, shards);
    case WavefrontBackend::WorkStealing:
      return std::make_unique<WorkStealingBackend>(pool, shards);
    case WavefrontBackend::Auto:
      break;  // resolved above
  }
  return std::make_unique<SequentialBackend>();
}

}  // namespace ps
