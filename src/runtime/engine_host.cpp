#include "runtime/engine_host.hpp"

#include <exception>
#include <string_view>
#include <utility>

#include "support/telemetry.hpp"

namespace ps {

namespace {

/// Strip a "<tier>: " prefix a lower layer already baked into its
/// message (the native emitter throws "native: ...", the bytecode
/// compiler "bytecode: ..."), so the structured cause carries the bare
/// text and rendering does not double the prefix.
std::string strip_tier_prefix(EvalEngine tier, std::string cause) {
  std::string prefix = std::string(eval_engine_name(tier)) + ": ";
  if (cause.rfind(prefix, 0) == 0) cause.erase(0, prefix.size());
  return cause;
}

}  // namespace

std::string EngineHost::render(const TierFallback& fallback) {
  return std::string(eval_engine_name(fallback.tier)) + ": " + fallback.cause;
}

void EngineHost::record_fallback(EvalEngine tier, std::string cause) {
  TierFallback fallback{tier, strip_tier_prefix(tier, std::move(cause))};
  if (!rendered_.empty()) rendered_ += "; ";
  rendered_ += render(fallback);
  fallbacks_.push_back(std::move(fallback));
}

bool EngineHost::is_equation_target(size_t data_index) const {
  for (const CheckedEquation& eq : module_->equations)
    if (eq.target == data_index) return true;
  return false;
}

bool EngineHost::bind_scalar_input(const std::string& name, int64_t& as_int,
                                   double& as_real) const {
  auto from_int = [&]() {
    auto it = int_env_->find(name);
    if (it == int_env_->end()) return false;
    as_int = it->second;
    as_real = static_cast<double>(it->second);
    return true;
  };
  auto from_real = [&]() {
    auto it = real_inputs_->find(name);
    if (it == real_inputs_->end()) return false;
    as_int = static_cast<int64_t>(it->second);
    as_real = it->second;
    return true;
  };
  if (options_.prefer_real_scalars) return from_real() || from_int();
  return from_int() || from_real();
}

void EngineHost::select(const CheckedModule& module,
                        std::map<std::string, NdArray, std::less<>>& arrays,
                        const IntEnv& int_env,
                        const std::map<std::string, double>& real_inputs,
                        const EngineHostOptions& options, KernelEmitFn emit) {
  module_ = &module;
  arrays_ = &arrays;
  int_env_ = &int_env;
  real_inputs_ = &real_inputs;
  options_ = options;
  layout_ = BcLayout::for_module(module);

  // The tier ladder: Native degrades to Bytecode (recording why), and
  // Bytecode degrades to TreeWalk. A tree-walk request skips both
  // compiled tiers -- also recorded, so `engine()` plus
  // `fallback_reason()` always explain the evaluator in effect.
  TraceSpan span("tier-select", "engine");
  span.arg("module", module.name);
  span.arg("requested", eval_engine_name(options_.engine));
  if (options_.engine == EvalEngine::Native) {
    setup_native(emit);
    if (!use_native_) setup_bytecode();
  } else if (options_.engine == EvalEngine::Bytecode) {
    setup_bytecode();
  } else {
    record_fallback(EvalEngine::TreeWalk, "engine requested");
  }
  span.arg("selected", eval_engine_name(engine()));
  if (!rendered_.empty()) span.arg("fallback", rendered_);
  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics
      .counter(std::string("engine.selected.") +
               std::string(eval_engine_name(engine())))
      .add(1);
  if (!fallbacks_.empty()) metrics.counter("engine.fallbacks").add(1);
}

void EngineHost::setup_native(const KernelEmitFn& emit) {
  if (!native_engine_available()) {
    record_fallback(EvalEngine::Native, native_engine_unavailable_reason());
    return;
  }
  if (!emit) {
    record_fallback(EvalEngine::Native, "no kernel emitter for this runner");
    return;
  }

  // Bind both interpretations of every scalar input up front, exactly
  // like the bytecode tier; an unbound but referenced scalar keeps the
  // module on the lower tiers (their lazy-name story). Equation-target
  // scalars are computed by the kernel itself mid-run, so they need no
  // binding.
  native_ints_.assign(static_cast<size_t>(layout_.scalar_count), 0);
  native_reals_.assign(static_cast<size_t>(layout_.scalar_count), 0.0);
  for (size_t i = 0; i < module_->data.size(); ++i) {
    const DataItem& item = module_->data[i];
    if (!item.is_scalar()) continue;
    int32_t slot = layout_.scalar_slot[i];
    if (slot < 0) continue;
    int64_t as_int = 0;
    double as_real = 0.0;
    if (bind_scalar_input(item.name, as_int, as_real)) {
      native_ints_[static_cast<size_t>(slot)] = as_int;
      native_reals_[static_cast<size_t>(slot)] = as_real;
    } else if (!is_equation_target(i)) {
      bool referenced = false;
      for (const CheckedEquation& eq : module_->equations)
        for (const std::string& name : eq.scalar_refs)
          if (name == item.name) referenced = true;
      if (referenced) {
        record_fallback(EvalEngine::Native,
                        "scalar input '" + item.name + "' is unbound");
        return;
      }
    }
  }

  NativeKernel kernel;
  try {
    kernel = emit(layout_);
  } catch (const std::exception& error) {
    record_fallback(EvalEngine::Native, error.what());
    return;
  }

  native_params_.clear();
  native_params_.reserve(kernel.param_names.size());
  for (const std::string& param : kernel.param_names) {
    auto it = int_env_->find(param);
    if (it == int_env_->end()) {
      record_fallback(EvalEngine::Native,
                      "bound parameter '" + param + "' is unbound");
      return;
    }
    native_params_.push_back(it->second);
  }

  auto module = load_native_module(kernel, options_.native_store, native_info_);
  if (module == nullptr) {
    record_fallback(EvalEngine::Native, native_info_.error);
    return;
  }
  native_ = std::move(module);

  // psc_arr descriptors over the client's storage, in array-slot order.
  // The NdArrays live in a node-stable map and are never reshaped, so
  // the pointers stay valid for the host's lifetime.
  native_arrs_.assign(static_cast<size_t>(layout_.array_count), PscArr{});
  for (size_t i = 0; i < module_->data.size(); ++i) {
    const DataItem& item = module_->data[i];
    // Keyed on the layout slot, not is_scalar(): rank-0 record items
    // take array slots too (one trailing field dimension, see
    // bc_is_record_item), and skipping them would hand the kernel a
    // null psc_arr descriptor.
    int32_t slot = layout_.array_slot[i];
    if (slot < 0) continue;
    NdArray& arr = arrays_->at(item.name);
    native_arrs_[static_cast<size_t>(slot)] =
        PscArr{arr.raw().data(), arr.lo_ptr(), arr.window_ptr(),
               arr.stride_ptr()};
  }
  use_native_ = true;
}

void EngineHost::setup_bytecode() {
  // Compile every equation once against the module-wide slot layout.
  // The VM frame sizes itself to the loop nest, so there is no depth
  // limit; modules genuinely outside the bytecode fragment keep the
  // tree-walk reference evaluator instead of failing -- and the reason
  // is recorded rather than swallowed.
  try {
    core_.compile(*module_);
  } catch (const std::exception& error) {
    record_fallback(EvalEngine::Bytecode, error.what());
    return;
  }
  core_.set_dispatch(options_.dispatch);
  core_.bind_arrays(*arrays_);
  for (size_t i = 0; i < module_->data.size(); ++i) {
    const DataItem& item = module_->data[i];
    if (!item.is_scalar()) continue;
    int64_t as_int = 0;
    double as_real = 0.0;
    if (bind_scalar_input(item.name, as_int, as_real)) {
      core_.set_scalar(i, as_int, as_real);
    } else if (!is_equation_target(i) && core_.scalar_referenced(i)) {
      // The tree-walk evaluator reports unbound names lazily, and only
      // when a taken branch actually reads them; preserve that by
      // leaving the slow path in charge of this module.
      record_fallback(
          EvalEngine::Bytecode,
          "scalar input '" + item.name + "' is unbound (tree-walk resolves "
          "names lazily; the bytecode engine would need a value up front)");
      return;
    }
  }
  // Every referenced input scalar is now bound (or we fell back above);
  // quicken the parameter loads into immediates before the hot loops.
  // Equation-target scalars are never quickened, so the clients'
  // mid-run set_scalar writes keep working.
  core_.quicken_scalars();
  use_bytecode_ = true;
}

EngineTierProbe probe_engine_tier(const CheckedModule& module) {
  EngineTierProbe probe;
  EvalCore core;
  try {
    core.compile(module);
    probe.tier = std::string(eval_engine_name(EvalEngine::Bytecode));
  } catch (const std::exception& error) {
    probe.tier = std::string(eval_engine_name(EvalEngine::TreeWalk));
    probe.fallback = EngineHost::render(TierFallback{
        EvalEngine::Bytecode,
        strip_tier_prefix(EvalEngine::Bytecode, error.what())});
  }
  return probe;
}

void EngineHost::set_scalar(size_t data_index, int64_t as_int,
                            double as_real) {
  if (core_.compiled()) core_.set_scalar(data_index, as_int, as_real);
  if (use_native_) {
    int32_t slot = layout_.scalar_slot[data_index];
    if (slot >= 0) {
      native_ints_[static_cast<size_t>(slot)] = as_int;
      native_reals_[static_cast<size_t>(slot)] = as_real;
    }
  }
}

}  // namespace ps
