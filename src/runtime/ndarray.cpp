#include "runtime/ndarray.hpp"

#include <cassert>
#include <stdexcept>

namespace ps {

NdArray::NdArray(std::vector<int64_t> lo, std::vector<int64_t> hi,
                 std::vector<int64_t> window)
    : lo_(std::move(lo)), hi_(std::move(hi)), window_(std::move(window)) {
  if (lo_.size() != hi_.size() || lo_.size() != window_.size())
    throw std::invalid_argument("NdArray: rank mismatch");
  size_t phys = 1;
  logical_size_ = 1;
  for (size_t d = 0; d < lo_.size(); ++d) {
    int64_t extent = hi_[d] - lo_[d] + 1;
    if (extent < 0) extent = 0;
    if (window_[d] <= 0 || window_[d] > extent) window_[d] = extent;
    if (window_[d] < extent) windowed_ = true;
    phys *= static_cast<size_t>(window_[d]);
    logical_size_ *= static_cast<size_t>(extent);
  }
  stride_.assign(lo_.size(), 1);
  for (size_t d = lo_.size(); d-- > 1;)
    stride_[d - 1] = stride_[d] * window_[d];
  data_.assign(phys, 0.0);
}

NdArray NdArray::full(std::vector<int64_t> lo, std::vector<int64_t> hi) {
  std::vector<int64_t> window(lo.size(), 0);
  for (size_t d = 0; d < lo.size(); ++d) window[d] = hi[d] - lo[d] + 1;
  return NdArray(std::move(lo), std::move(hi), std::move(window));
}

size_t NdArray::offset(std::span<const int64_t> idx) const {
  assert(idx.size() == lo_.size());
  size_t off = 0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    int64_t rel = idx[d] - lo_[d];
    assert(rel >= 0 && idx[d] <= hi_[d]);
    if (window_[d] < hi_[d] - lo_[d] + 1) rel %= window_[d];
    off += static_cast<size_t>(rel) * static_cast<size_t>(stride_[d]);
  }
  return off;
}

bool NdArray::in_bounds(std::span<const int64_t> idx) const {
  if (idx.size() != lo_.size()) return false;
  for (size_t d = 0; d < lo_.size(); ++d)
    if (idx[d] < lo_[d] || idx[d] > hi_[d]) return false;
  return true;
}

void NdArray::fill(double value) {
  for (double& v : data_) v = value;
}

}  // namespace ps
