#include "runtime/consumer_stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "transform/polyhedron.hpp"

namespace ps {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("wavefront: " + message);
}

int64_t rat_floor(const Rational& r) {
  int64_t q = r.num() / r.den();  // den() is always positive
  if (r.num() % r.den() != 0 && r.num() < 0) --q;
  return q;
}

int64_t rat_ceil(const Rational& r) { return -rat_floor(-r); }

}  // namespace

/// Enumerates, in lexicographic loop order, the box tuples v with
/// form(v) == t: an odometer over the free dimensions with the pivot
/// dimension solved exactly. Because the pivot is the *last* dimension
/// with a nonzero coefficient, dimensions after it are free with zero
/// coefficient, so for a fixed prefix the pivot value is fixed -- the
/// emission order is exactly the lexicographic order of the full
/// tuples, which is what keeps the stream byte-compatible with the old
/// eager buckets.
class ConsumerStream::FormCursor {
 public:
  FormCursor(const Consumer& consumer, size_t form, int64_t t)
      : consumer_(&consumer), form_(&consumer.forms[form]), t_(t) {
    const size_t dims = consumer.lo.size();
    vals_.resize(dims);
    if (consumer.empty_box) {
      exhausted_ = true;
      return;
    }
    if (form_->pivot < 0 && form_->c0 != Rational(t)) {
      exhausted_ = true;  // constant form off this hyperplane
      return;
    }
    for (size_t d = 0; d < dims; ++d) vals_[d] = consumer.lo[d];
  }

  /// Advance to the next tuple with form(vals) == t; false when done.
  bool next() {
    if (exhausted_) return false;
    while (true) {
      if (started_) {
        if (!advance_free()) return false;
      } else {
        started_ = true;
      }
      if (solve_pivot()) return true;
    }
  }

  [[nodiscard]] const std::vector<int64_t>& vals() const { return vals_; }

 private:
  /// Odometer step over every non-pivot dimension (lexicographic).
  bool advance_free() {
    const int pivot = form_->pivot;
    size_t d = vals_.size();
    while (true) {
      if (d == 0) {
        exhausted_ = true;
        return false;
      }
      --d;
      if (static_cast<int>(d) == pivot) continue;
      if (vals_[d] < consumer_->hi[d]) {
        ++vals_[d];
        // Reset the free dimensions inside d to their lower corner.
        for (size_t inner = d + 1; inner < vals_.size(); ++inner)
          if (static_cast<int>(inner) != pivot)
            vals_[inner] = consumer_->lo[inner];
        return true;
      }
      vals_[d] = consumer_->lo[d];
    }
  }

  /// Solve the pivot dimension for form(vals) == t; false when the
  /// solution is fractional or outside the pivot's range (this free
  /// combination contributes no instance). Constant forms (pivot < 0)
  /// match every tuple -- the constructor already checked c0 == t.
  bool solve_pivot() {
    const int pivot = form_->pivot;
    if (pivot < 0) return true;
    Rational rest = Rational(t_) - form_->c0;
    for (size_t d = 0; d < vals_.size(); ++d) {
      if (static_cast<int>(d) == pivot) continue;
      if (!form_->coeffs[d].is_zero())
        rest -= form_->coeffs[d] * Rational(vals_[d]);
    }
    Rational v = rest / form_->coeffs[static_cast<size_t>(pivot)];
    if (!v.is_integer()) return false;
    int64_t value = v.as_integer();
    if (value < consumer_->lo[static_cast<size_t>(pivot)] ||
        value > consumer_->hi[static_cast<size_t>(pivot)])
      return false;
    vals_[static_cast<size_t>(pivot)] = value;
    return true;
  }

  const Consumer* consumer_;
  const Form* form_;
  int64_t t_;
  std::vector<int64_t> vals_;
  bool started_ = false;
  bool exhausted_ = false;
};

ConsumerStream::ConsumerStream(const CheckedModule& module,
                               const std::vector<size_t>& consumers,
                               const std::string& array, int64_t window,
                               const IntEnv& params)
    : array_(array), window_(window) {
  consumers_.reserve(consumers.size());
  for (size_t id : consumers) {
    const CheckedEquation& eq = module.equations[id];
    Consumer consumer;
    consumer.id = id;

    const size_t dims = eq.loop_dims.size();
    consumer.lo.resize(dims);
    consumer.hi.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      auto l = eval_const_int(*eq.loop_dims[d].range->lo, params);
      auto h = eval_const_int(*eq.loop_dims[d].range->hi, params);
      if (!l || !h) fail("cannot evaluate consumer bounds");
      consumer.lo[d] = *l;
      consumer.hi[d] = *h;
      if (*h < *l) consumer.empty_box = true;
    }

    for (const ArrayRefInfo& ref : eq.array_refs) {
      if (ref.array != array_) continue;
      auto affine = affine_from_expr(*ref.subs.front().expr);
      if (!affine)
        fail("consumer reads '" + array_ +
             "' at a non-affine hyperplane subscript");
      Form form;
      form.c0 = affine->constant;
      form.coeffs.assign(dims, Rational(0));
      for (const auto& [name, coeff] : affine->coeffs) {
        bool is_loop_var = false;
        for (size_t d = 0; d < dims; ++d) {
          if (eq.loop_dims[d].var == name) {
            form.coeffs[d] = coeff;
            is_loop_var = true;
            break;
          }
        }
        if (is_loop_var) continue;
        auto it = params.find(name);
        // Same contract as the eager buckets: a subscript over an
        // unbound name cannot resolve to an integer hyperplane.
        if (it == params.end()) fail("non-integer hyperplane subscript");
        form.c0 += coeff * Rational(it->second);
      }
      // The pivot is the *last* loop dimension with a nonzero
      // coefficient; dimensions after it are free in this form.
      for (size_t d = dims; d-- > 0;) {
        if (!form.coeffs[d].is_zero()) {
          form.pivot = static_cast<int>(d);
          break;
        }
      }
      // Integer coefficients guarantee every instance lands on an
      // integer hyperplane, so the per-instance check in accept() can
      // never be silently bypassed by pivot solving (a fractional
      // coefficient would make solve_pivot *skip* the instances the
      // eager scan used to fail on). affine_from_expr cannot produce
      // fractional coefficients today; keep the loud error if that
      // ever changes.
      bool integral = form.c0.is_integer();
      for (const Rational& coeff : form.coeffs)
        if (!coeff.is_integer()) integral = false;
      if (!integral) fail("non-integer hyperplane subscript");
      consumer.forms.push_back(std::move(form));
    }

    if (!consumer.empty_box && consumer.forms.size() > 1) {
      // Pairwise read span: the slice distance between two reads of one
      // instance is (form_j - form_k)(v), itself affine -- its box
      // maximum bounds newest - oldest over the whole consumer.
      // Single-form consumers read exactly one slice, span 0.
      for (size_t j = 0; j < consumer.forms.size(); ++j) {
        for (size_t k = 0; k < consumer.forms.size(); ++k) {
          if (j == k) continue;
          const Form& fj = consumer.forms[j];
          const Form& fk = consumer.forms[k];
          Rational diff_max = fj.c0 - fk.c0;
          for (size_t d = 0; d < dims; ++d) {
            Rational c = fj.coeffs[d] - fk.coeffs[d];
            if (c.is_zero()) continue;
            diff_max += std::max(c * Rational(consumer.lo[d]),
                                 c * Rational(consumer.hi[d]));
          }
          max_read_span_ = std::max(max_read_span_, rat_floor(diff_max));
        }
      }
    }

    if (!consumer.empty_box && !consumer.forms.empty()) {
      // Conservative hyperplane range: every instance's landing slice
      // t(v) = max_k form_k(v) satisfies
      //   max_k (min over the box of form_k) <= t(v) <= max_k (max ...).
      bool first = true;
      Rational t_min_r;
      Rational t_max_r;
      for (const Form& form : consumer.forms) {
        Rational box_min = form.c0;
        Rational box_max = form.c0;
        for (size_t d = 0; d < dims; ++d) {
          const Rational& c = form.coeffs[d];
          if (c.is_zero()) continue;
          Rational at_lo = c * Rational(consumer.lo[d]);
          Rational at_hi = c * Rational(consumer.hi[d]);
          box_min += std::min(at_lo, at_hi);
          box_max += std::max(at_lo, at_hi);
        }
        if (first || box_min > t_min_r) t_min_r = box_min;
        if (first || box_max > t_max_r) t_max_r = box_max;
        first = false;
      }
      consumer.t_min = rat_ceil(t_min_r);
      consumer.t_max = rat_floor(t_max_r);
      if (consumer.t_min <= consumer.t_max) {
        if (min_t_ > max_t_) {
          min_t_ = consumer.t_min;
          max_t_ = consumer.t_max;
        } else {
          min_t_ = std::min(min_t_, consumer.t_min);
          max_t_ = std::max(max_t_, consumer.t_max);
        }
      }
    }
    consumers_.push_back(std::move(consumer));
  }
}

bool ConsumerStream::accept(const Consumer& consumer, size_t k,
                            const std::vector<int64_t>& vals,
                            int64_t t) const {
  int64_t newest = t;  // form k evaluates to t by construction
  int64_t oldest = t;
  size_t first_at_t = k;
  for (size_t j = 0; j < consumer.forms.size(); ++j) {
    const Form& form = consumer.forms[j];
    Rational value = form.c0;
    for (size_t d = 0; d < vals.size(); ++d)
      if (!form.coeffs[d].is_zero())
        value += form.coeffs[d] * Rational(vals[d]);
    if (!value.is_integer()) fail("non-integer hyperplane subscript");
    int64_t slice = value.as_integer();
    if (slice > t) return false;  // lands on a later hyperplane
    if (slice == t && j < first_at_t) first_at_t = j;
    newest = std::max(newest, slice);
    oldest = std::min(oldest, slice);
  }
  if (newest - oldest >= window_)
    fail("consumer instance spans " + std::to_string(newest - oldest + 1) +
         " hyperplane slices, more than the window");
  // Dedupe: the instance is emitted by the first form achieving t.
  return first_at_t == k;
}

int64_t ConsumerStream::stream_consumer(
    const Consumer& consumer, int64_t t,
    const std::function<void(size_t, const std::vector<int64_t>&)>& fn)
    const {
  // One pre-filtered lexicographic stream per form, k-way merged. The
  // accept() dedupe makes the streams disjoint, so equal-tuple merge
  // collisions cannot happen.
  const size_t form_count = consumer.forms.size();
  std::vector<FormCursor> cursors;
  cursors.reserve(form_count);
  std::vector<bool> active(form_count, false);
  for (size_t k = 0; k < form_count; ++k) {
    cursors.emplace_back(consumer, k, t);
    while (cursors[k].next()) {
      if (accept(consumer, k, cursors[k].vals(), t)) {
        active[k] = true;
        break;
      }
    }
  }

  int64_t emitted = 0;
  while (true) {
    int best = -1;
    for (size_t k = 0; k < form_count; ++k) {
      if (!active[k]) continue;
      if (best < 0 ||
          cursors[k].vals() < cursors[static_cast<size_t>(best)].vals())
        best = static_cast<int>(k);
    }
    if (best < 0) break;
    size_t k = static_cast<size_t>(best);
    fn(consumer.id, cursors[k].vals());
    ++emitted;
    active[k] = false;
    while (cursors[k].next()) {
      if (accept(consumer, k, cursors[k].vals(), t)) {
        active[k] = true;
        break;
      }
    }
  }
  return emitted;
}

int64_t ConsumerStream::for_hyperplane(
    int64_t t,
    const std::function<void(size_t, const std::vector<int64_t>&)>& fn)
    const {
  int64_t total = 0;
  for (const Consumer& consumer : consumers_) {
    if (consumer.empty_box || consumer.forms.empty()) continue;
    if (t < consumer.t_min || t > consumer.t_max) continue;
    total += stream_consumer(consumer, t, fn);
  }
  return total;
}

}  // namespace ps
