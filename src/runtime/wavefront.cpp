#include "runtime/wavefront.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "runtime/native_engine.hpp"
#include "support/telemetry.hpp"

namespace ps {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("wavefront: " + message);
}

/// A scalar runtime value with the same promotion rules as the
/// flowchart interpreter (cross-checked in the tests).
struct Val {
  enum class Tag { Int, Real, Bool } tag = Tag::Real;
  int64_t i = 0;
  double d = 0;
  bool b = false;

  [[nodiscard]] double as_real() const {
    switch (tag) {
      case Tag::Int:
        return static_cast<double>(i);
      case Tag::Bool:
        return b ? 1.0 : 0.0;
      case Tag::Real:
        break;
    }
    return d;
  }
  static Val of_int(int64_t v) { return {Tag::Int, v, 0, false}; }
  static Val of_real(double v) { return {Tag::Real, 0, v, false}; }
  static Val of_bool(bool v) { return {Tag::Bool, 0, 0, v}; }
};

/// Evaluation context: loop-variable bindings, scalar parameters and
/// array storage. Read-only during a hyperplane, so safe to share
/// across the pool workers.
struct EvalCtx {
  const std::vector<std::pair<std::string_view, int64_t>>* vars = nullptr;
  const IntEnv* ints = nullptr;
  const std::map<std::string, double>* reals = nullptr;
  std::map<std::string, NdArray, std::less<>>* arrays = nullptr;
  const CheckedModule* module = nullptr;
};

Val eval(const Expr& e, const EvalCtx& ctx);

int64_t eval_int(const Expr& e, const EvalCtx& ctx) {
  Val v = eval(e, ctx);
  if (v.tag == Val::Tag::Int) return v.i;
  if (v.tag == Val::Tag::Real && v.d == std::floor(v.d))
    return static_cast<int64_t>(v.d);
  fail("expected an integer subscript");
}

Val eval(const Expr& e, const EvalCtx& ctx) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return Val::of_int(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::RealLit:
      return Val::of_real(static_cast<const RealLitExpr&>(e).value);
    case ExprKind::BoolLit:
      return Val::of_bool(static_cast<const BoolLitExpr&>(e).value);
    case ExprKind::Name: {
      const auto& name = static_cast<const NameExpr&>(e).name;
      if (ctx.vars != nullptr)
        for (const auto& [v, value] : *ctx.vars)
          if (v == name) return Val::of_int(value);
      if (auto it = ctx.ints->find(name); it != ctx.ints->end())
        return Val::of_int(it->second);
      if (auto it = ctx.reals->find(name); it != ctx.reals->end())
        return Val::of_real(it->second);
      fail("no value for name '" + name + "'");
    }
    case ExprKind::Index: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      if (ix.base->kind != ExprKind::Name)
        fail("unsupported subscripted expression");
      const auto& name = static_cast<const NameExpr&>(*ix.base).name;
      auto it = ctx.arrays->find(name);
      if (it == ctx.arrays->end()) fail("no array named '" + name + "'");
      std::vector<int64_t> idx;
      idx.reserve(ix.subs.size());
      for (const auto& sub : ix.subs) idx.push_back(eval_int(*sub, ctx));
      if (!it->second.in_bounds(idx))
        fail("read outside the bounds of '" + name + "'");
      double v = it->second.at(idx);
      const DataItem* item = ctx.module->find_data(name);
      if (item != nullptr && item->elem->scalar_kind() == TypeKind::Int)
        return Val::of_int(static_cast<int64_t>(v));
      return Val::of_real(v);
    }
    case ExprKind::Field:
      fail("record fields are not supported by the wavefront runner");
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      Val v = eval(*u.operand, ctx);
      if (u.op == UnaryOp::Neg) {
        if (v.tag == Val::Tag::Int) return Val::of_int(-v.i);
        return Val::of_real(-v.as_real());
      }
      return Val::of_bool(!v.b);
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op == BinaryOp::And) {
        Val l = eval(*b.lhs, ctx);
        if (!l.b) return Val::of_bool(false);
        return eval(*b.rhs, ctx);
      }
      if (b.op == BinaryOp::Or) {
        Val l = eval(*b.lhs, ctx);
        if (l.b) return Val::of_bool(true);
        return eval(*b.rhs, ctx);
      }
      Val l = eval(*b.lhs, ctx);
      Val r = eval(*b.rhs, ctx);
      bool both_int = l.tag == Val::Tag::Int && r.tag == Val::Tag::Int;
      switch (b.op) {
        case BinaryOp::Add:
          return both_int ? Val::of_int(l.i + r.i)
                          : Val::of_real(l.as_real() + r.as_real());
        case BinaryOp::Sub:
          return both_int ? Val::of_int(l.i - r.i)
                          : Val::of_real(l.as_real() - r.as_real());
        case BinaryOp::Mul:
          return both_int ? Val::of_int(l.i * r.i)
                          : Val::of_real(l.as_real() * r.as_real());
        case BinaryOp::Div:
          return Val::of_real(l.as_real() / r.as_real());
        case BinaryOp::IntDiv:
          if (!both_int || r.i == 0) fail("bad 'div' operands");
          return Val::of_int(l.i / r.i);
        case BinaryOp::Mod:
          if (!both_int || r.i == 0) fail("bad 'mod' operands");
          return Val::of_int(l.i % r.i);
        default: {
          if (both_int) {
            switch (b.op) {
              case BinaryOp::Eq: return Val::of_bool(l.i == r.i);
              case BinaryOp::Ne: return Val::of_bool(l.i != r.i);
              case BinaryOp::Lt: return Val::of_bool(l.i < r.i);
              case BinaryOp::Le: return Val::of_bool(l.i <= r.i);
              case BinaryOp::Gt: return Val::of_bool(l.i > r.i);
              case BinaryOp::Ge: return Val::of_bool(l.i >= r.i);
              default: fail("unsupported binary operator");
            }
          }
          double a = l.as_real();
          double c = r.as_real();
          switch (b.op) {
            case BinaryOp::Eq: return Val::of_bool(a == c);
            case BinaryOp::Ne: return Val::of_bool(a != c);
            case BinaryOp::Lt: return Val::of_bool(a < c);
            case BinaryOp::Le: return Val::of_bool(a <= c);
            case BinaryOp::Gt: return Val::of_bool(a > c);
            case BinaryOp::Ge: return Val::of_bool(a >= c);
            default: fail("unsupported binary operator");
          }
        }
      }
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      Val c = eval(*i.cond, ctx);
      return eval(c.b ? *i.then_expr : *i.else_expr, ctx);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      auto arg = [&](size_t k) { return eval(*c.args[k], ctx); };
      if (c.callee == "abs") {
        Val v = arg(0);
        if (v.tag == Val::Tag::Int) return Val::of_int(v.i < 0 ? -v.i : v.i);
        return Val::of_real(std::fabs(v.as_real()));
      }
      if (c.callee == "min" || c.callee == "max") {
        Val a = arg(0);
        Val b = arg(1);
        bool both_int = a.tag == Val::Tag::Int && b.tag == Val::Tag::Int;
        bool take_min = c.callee == "min";
        if (both_int)
          return Val::of_int(take_min ? std::min(a.i, b.i)
                                      : std::max(a.i, b.i));
        return Val::of_real(take_min ? std::min(a.as_real(), b.as_real())
                                     : std::max(a.as_real(), b.as_real()));
      }
      if (c.callee == "sqrt") return Val::of_real(std::sqrt(arg(0).as_real()));
      if (c.callee == "sin") return Val::of_real(std::sin(arg(0).as_real()));
      if (c.callee == "cos") return Val::of_real(std::cos(arg(0).as_real()));
      if (c.callee == "exp") return Val::of_real(std::exp(arg(0).as_real()));
      if (c.callee == "ln") return Val::of_real(std::log(arg(0).as_real()));
      fail("unknown intrinsic '" + c.callee + "'");
    }
  }
  fail("unreachable expression kind");
}

/// Invoke `fn` for every point of the rectangular box [lo, hi] in
/// lexicographic order; a rank-0 box has exactly one (empty) point.
void for_each_box_point(const std::vector<int64_t>& lo,
                        const std::vector<int64_t>& hi,
                        const std::function<void(const std::vector<int64_t>&)>&
                            fn) {
  for (size_t d = 0; d < lo.size(); ++d)
    if (hi[d] < lo[d]) return;  // empty box
  std::vector<int64_t> vals = lo;
  while (true) {
    fn(vals);
    size_t d = vals.size();
    while (true) {
      if (d == 0) return;
      --d;
      if (++vals[d] <= hi[d]) break;
      vals[d] = lo[d];
    }
  }
}

}  // namespace

WavefrontRunner::WavefrontRunner(const CheckedModule& transformed,
                                 const HyperplaneTransform& transform,
                                 const LoopNestBounds& nest,
                                 IntEnv int_inputs,
                                 std::map<std::string, double> real_inputs,
                                 WavefrontOptions options)
    : module_(transformed),
      transform_(transform),
      nest_(nest),
      int_env_(std::move(int_inputs)),
      real_inputs_(std::move(real_inputs)),
      options_(options),
      new_array_(transform.array + "'") {
  const DataItem* item = module_.find_data(new_array_);
  if (item == nullptr)
    fail("module has no transformed array '" + new_array_ + "'");
  if (item->rank() != transform_.dims())
    fail("rank of '" + new_array_ + "' does not match the transform");
  if (nest_.levels.size() != transform_.dims())
    fail("exact-bounds nest does not match the transform");
  for (size_t r = 0; r < transform_.dims(); ++r)
    if (nest_.levels[r].var != transform_.new_vars[r])
      fail("exact-bounds nest is not in transformed-variable order");

  // Classify the equations: the single recurrence defining A', the
  // consumers reading it, and everything else ("pre" work).
  size_t target_index = module_.data_index(new_array_);
  bool found_recurrence = false;
  for (const CheckedEquation& eq : module_.equations) {
    if (eq.target == target_index) {
      if (found_recurrence)
        fail("more than one equation defines '" + new_array_ + "'");
      recurrence_ = eq.id;
      found_recurrence = true;
      continue;
    }
    bool reads = std::any_of(
        eq.array_refs.begin(), eq.array_refs.end(),
        [&](const ArrayRefInfo& ref) { return ref.array == new_array_; });
    (reads ? consumers_ : pre_).push_back(eq.id);
  }
  if (!found_recurrence)
    fail("module has no recurrence defining '" + new_array_ + "'");

  const CheckedEquation& rec = module_.equations[recurrence_];
  if (rec.loop_dims.size() != transform_.dims())
    fail("recurrence does not loop over every transformed dimension");
  for (size_t d = 0; d < rec.loop_dims.size(); ++d)
    if (rec.loop_dims[d].var != transform_.new_vars[d])
      fail("recurrence loop order differs from the transform");

  // Window: 1 + the largest backward offset of a self-reference in the
  // hyperplane dimension (the paper derives 3 for the relaxation:
  // references K'-1 and K'-2).
  int64_t max_back = 0;
  for (const ArrayRefInfo& ref : rec.array_refs) {
    if (ref.array != new_array_) continue;
    const SubscriptInfo& first = ref.subs.front();
    if (first.kind != SubscriptInfo::Kind::IndexVar ||
        first.var != transform_.new_vars[0] || first.offset > 0)
      fail("self-reference outside the hyperplane-offset form");
    max_back = std::max(max_back, -first.offset);
  }
  window_ = options_.window > 0 ? options_.window : max_back + 1;
  if (window_ <= max_back)
    fail("window " + std::to_string(window_) +
         " is smaller than the recurrence depth " +
         std::to_string(max_back + 1));

  // Allocate storage: the transformed array windowed in its hyperplane
  // dimension, everything else in full.
  for (const DataItem& d : module_.data) {
    if (d.is_scalar()) {
      if (d.cls != DataClass::Input)
        fail("computed scalars are not supported by the wavefront runner");
      continue;
    }
    if (d.elem != nullptr && d.elem->kind == TypeKind::Record)
      fail("record-typed data item '" + d.name + "' is not supported");
    std::vector<int64_t> lo(d.rank());
    std::vector<int64_t> hi(d.rank());
    std::vector<int64_t> win(d.rank());
    for (size_t dim = 0; dim < d.rank(); ++dim) {
      auto l = eval_const_int(*d.dims[dim]->lo, int_env_);
      auto h = eval_const_int(*d.dims[dim]->hi, int_env_);
      if (!l || !h) fail("cannot evaluate bounds of '" + d.name + "'");
      lo[dim] = *l;
      hi[dim] = *h;
      win[dim] = *h - *l + 1;
    }
    if (d.name == new_array_) win[0] = std::min(window_, win[0]);
    arrays_.emplace(d.name, NdArray(std::move(lo), std::move(hi),
                                    std::move(win)));
  }

  // Layer construction: the schedule over the exact nest, and the
  // execution backend the options select. The consumer stream is built
  // lazily on first run() (matching the old bucket-build error timing).
  schedule_ = std::make_unique<HyperplaneSchedule>(nest_, int_env_);
  backend_ = make_wavefront_backend(options_.backend, options_.pool,
                                    options_.shards);

  // Engine tiering through the shared host: Native degrades to
  // Bytecode (recording why), and Bytecode degrades to TreeWalk
  // exactly as before. The runner contributes only its kernel emitter
  // (the per-equation + stripe form over the exact nest).
  EngineHostOptions host_options;
  host_options.engine = options_.engine;
  host_options.dispatch = options_.dispatch;
  host_options.native_store = options_.native_store;
  host_options.prefer_real_scalars = false;  // int_env binds first
  host_.select(module_, arrays_, int_env_, real_inputs_, host_options,
               [this](const BcLayout& layout) {
                 NativeEmitOptions emit_options;
                 if (native_engine_simd_enabled())
                   emit_options.simd_pragma = "omp simd";
                 return emit_native_kernel(module_, layout, &nest_,
                                           recurrence_, new_array_,
                                           emit_options);
               });
  stats_.fallback_reason = host_.fallback_reason();
  stats_.native_compile_ms = host_.native_info().compile_ms;
  stats_.native_cache_hit = host_.native_info().cache_hit;
  stats_.native_in_process_hit = host_.native_info().in_process_hit;
}

NdArray& WavefrontRunner::array(std::string_view name) {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) fail("no array named '" + std::string(name) + "'");
  return it->second;
}

const NdArray& WavefrontRunner::array(std::string_view name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) fail("no array named '" + std::string(name) + "'");
  return it->second;
}

size_t WavefrontRunner::allocated_doubles() const {
  size_t total = 0;
  for (const auto& [name, arr] : arrays_) total += arr.allocation();
  return total;
}

std::string WavefrontRunner::backend_description() const {
  return backend_->describe();
}

std::vector<int64_t> WavefrontRunner::context_points() const {
  return backend_->context_points();
}

void WavefrontRunner::eval_equation_instance(
    const CheckedEquation& eq, const std::vector<int64_t>& loop_vals,
    WorkerContext& ctx) {
  if (host_.native_ready()) {
    // Every equation of a loaded module has a point kernel; pre-phase
    // rotate-ins and consumer flushes run through the same machine code
    // as the recurrence, so all tiers of one run agree bit for bit.
    if (NativeModule::EquationFn fn = host_.native_module()->equation(eq.id)) {
      fn(host_.native_arrays(), host_.native_ints(), host_.native_reals(),
         loop_vals.data());
      return;
    }
  }
  // The frame and VM scratch are this worker's own (a WorkerContext per
  // backend worker replaced the old thread_locals): reuse avoids a heap
  // allocation per wavefront point without coupling concurrent runners.
  VarFrame& frame = ctx.frame;
  frame.vars.clear();
  frame.vars.reserve(eq.loop_dims.size());
  for (size_t d = 0; d < eq.loop_dims.size(); ++d)
    frame.vars.emplace_back(eq.loop_dims[d].var, loop_vals[d]);

  if (host_.bytecode_ready()) {
    // Hot path: every recurrence point, rotate-in and consumer flush
    // executes compiled stack code on the shared core.
    host_.core().eval_store(eq, frame, ctx.scratch);
    return;
  }

  std::vector<std::pair<std::string_view, int64_t>>& vars = frame.vars;
  EvalCtx tree_ctx{&vars, &int_env_, &real_inputs_, &arrays_, &module_};
  double value = eval(*eq.rhs, tree_ctx).as_real();

  const DataItem& target = module_.data[eq.target];
  std::vector<int64_t> idx(target.rank());
  for (size_t d = 0; d < target.rank(); ++d) {
    const LhsSubscript& sub = eq.lhs_subs[d];
    if (sub.is_index_var) {
      auto it = std::find_if(vars.begin(), vars.end(), [&](const auto& p) {
        return p.first == sub.var;
      });
      if (it == vars.end()) fail("unbound LHS index '" + sub.var + "'");
      idx[d] = it->second;
    } else {
      // Fixed LHS subscripts may be real-valued: convert through the
      // same defined truncation as the bytecode VM's lhs_index, so all
      // tiers agree even on NaN/out-of-range values.
      Val v = eval(*sub.fixed, tree_ctx);
      if (v.tag == Val::Tag::Bool) fail("boolean used as a subscript");
      idx[d] = v.tag == Val::Tag::Real ? bc_double_to_int64(v.d) : v.i;
    }
  }
  NdArray& arr = arrays_.at(target.name);
  if (!arr.in_bounds(idx))
    fail("write outside the bounds of '" + target.name + "'");
  arr.set(idx, value);
}

void WavefrontRunner::execute_pre_equations() {
  for (size_t id : pre_) {
    const CheckedEquation& eq = module_.equations[id];
    // Rectangular loop domain straight from the declared subranges.
    std::vector<int64_t> lo(eq.loop_dims.size());
    std::vector<int64_t> hi(eq.loop_dims.size());
    for (size_t d = 0; d < eq.loop_dims.size(); ++d) {
      auto l = eval_const_int(*eq.loop_dims[d].range->lo, int_env_);
      auto h = eval_const_int(*eq.loop_dims[d].range->hi, int_env_);
      if (!l || !h) fail("cannot evaluate pre-equation bounds");
      lo[d] = *l;
      hi[d] = *h;
    }
    for_each_box_point(lo, hi, [&](const std::vector<int64_t>& vals) {
      eval_equation_instance(eq, vals, main_ctx_);
    });
  }
}

void WavefrontRunner::execute_hyperplane(int64_t t) {
  const CheckedEquation& rec = module_.equations[recurrence_];
  if (host_.native_ready() && options_.native_stripes &&
      host_.native_module()->stripe() != nullptr) {
    // Batched path: one kernel call scans a whole contiguous stripe of
    // the hyperplane, so the C compiler's auto-vectorised inner loop
    // replaces a per-point indirect call.
    NativeModule::StripeFn stripe = host_.native_module()->stripe();
    stats_.points += backend_->run_hyperplane_stripes(
        *schedule_, t, [&](WorkerContext&, int64_t begin, int64_t end) {
          return stripe(host_.native_arrays(), host_.native_ints(),
                        host_.native_reals(), host_.native_params(), t, begin,
                        end);
        });
    return;
  }
  stats_.points += backend_->run_hyperplane(
      *schedule_, t,
      [&](WorkerContext& ctx) { eval_equation_instance(rec, ctx.vals, ctx); });
}

void WavefrontRunner::flush_hyperplane(int64_t t, WorkerContext& ctx) {
  int64_t flushed = stream_->for_hyperplane(
      t, [&](size_t eq, const std::vector<int64_t>& vals) {
        eval_equation_instance(module_.equations[eq], vals, ctx);
      });
  stats_.flushed += flushed;
  stats_.peak_bucket_instances =
      std::max(stats_.peak_bucket_instances, flushed);
}

bool WavefrontRunner::overlap_safe() const {
  if (!options_.overlap_flush || options_.pool == nullptr) return false;
  if (consumers_.empty()) return false;
  // While hyperplane t flushes, the backend writes slice t+1, evicting
  // physical slice (t+1) mod window -- logical slice t+1-window. The
  // flush reads back to t - max_read_span, so the span must stop short
  // of the evicted slice: span <= window - 2. (A window of 1 or 2 never
  // qualifies unless the span is 0 resp. 0 -- exactly right: with
  // window 2 the flush of t may still read t-0 only.)
  if (stream_->max_read_span() > window_ - 2) return false;
  // The flush writes the consumer target arrays; the concurrently
  // executing recurrence must not read (or define) any of them.
  const CheckedEquation& rec = module_.equations[recurrence_];
  for (size_t id : consumers_) {
    const CheckedEquation& eq = module_.equations[id];
    const std::string& target = module_.data[eq.target].name;
    if (target == new_array_) return false;
    for (const ArrayRefInfo& ref : rec.array_refs)
      if (ref.array == target) return false;
  }
  return true;
}

void WavefrontRunner::run_hyperplanes_overlapped(int64_t t_lo, int64_t t_hi) {
  // Depth-1 flush pipeline on a dedicated thread (NOT the options pool:
  // the pool runs one batch at a time, and the backend needs it for the
  // very hyperplane the flush overlaps). stats_.flushed / peak /
  // overlapped_flushes are written only by the flush thread inside the
  // loop; the join below publishes them back to the caller.
  std::mutex mu;
  std::condition_variable cv;
  int64_t pending_t = 0;
  int64_t submitted = 0;
  int64_t completed = 0;
  bool stop = false;
  std::exception_ptr flush_error;
  WorkerContext flush_ctx;

  std::thread flusher([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return submitted > completed || stop; });
      if (submitted == completed) return;  // stop, nothing in flight
      const int64_t t = pending_t;
      lock.unlock();
      std::exception_ptr err;
      try {
        flush_hyperplane(t, flush_ctx);
        ++stats_.overlapped_flushes;
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err != nullptr && flush_error == nullptr) flush_error = err;
      ++completed;
      cv.notify_all();
    }
  });
  auto stop_flusher = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    flusher.join();
  };

  try {
    for (int64_t t = t_lo; t <= t_hi; ++t) {
      TraceSpan plane_span("hyperplane", "wavefront");
      plane_span.arg("t", t);
      plane_span.arg("backend", stats_.backend);
      int64_t points_before = stats_.points;
      execute_hyperplane(t);
      ++stats_.hyperplanes;
      plane_span.arg("points", stats_.points - points_before);
      // Hand the completed slice to the flush thread. Waiting for the
      // previous flush first keeps the pipeline at depth 1 -- the
      // barrier the window safety argument (overlap_safe) relies on.
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return completed == submitted; });
      if (flush_error != nullptr) break;
      pending_t = t;
      ++submitted;
      cv.notify_all();
    }
    // Drain the last in-flight flush before the stranded check reads
    // the stream again from this thread.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == submitted; });
  } catch (...) {
    stop_flusher();
    throw;
  }
  stop_flusher();
  if (flush_error != nullptr) std::rethrow_exception(flush_error);
}

void WavefrontRunner::run() {
  stats_ = {};
  stats_.fallback_reason = host_.fallback_reason();
  stats_.backend = backend_->describe();
  stats_.native_compile_ms = host_.native_info().compile_ms;
  stats_.native_cache_hit = host_.native_info().cache_hit;
  stats_.native_in_process_hit = host_.native_info().in_process_hit;
  backend_->reset_counters();
  TraceSpan run_span("wavefront-run", "wavefront");
  run_span.arg("module", module_.name);
  run_span.arg("backend", stats_.backend);
  execute_pre_equations();
  if (stream_ == nullptr)
    stream_ = std::make_unique<ConsumerStream>(module_, consumers_,
                                               new_array_, window_, int_env_);

  const int64_t t_lo = schedule_->t_lo();
  const int64_t t_hi = schedule_->t_hi();
  // Flush anything scheduled before the first hyperplane (reads of
  // slices the recurrence never writes read zero-initialised storage,
  // matching the rectangular interpreter's zero fill).
  for (int64_t t = stream_->min_t(); t < t_lo && t <= stream_->max_t(); ++t)
    flush_hyperplane(t, main_ctx_);
  if (overlap_safe()) {
    run_hyperplanes_overlapped(t_lo, t_hi);
  } else {
    for (int64_t t = t_lo; t <= t_hi; ++t) {
      // Per-hyperplane spans are the hot path of the trace story -- with
      // telemetry off this is one relaxed load per plane, nothing more.
      TraceSpan plane_span("hyperplane", "wavefront");
      plane_span.arg("t", t);
      plane_span.arg("backend", stats_.backend);
      int64_t points_before = stats_.points;
      execute_hyperplane(t);
      ++stats_.hyperplanes;
      // Unrotate: the slice is still live in the window.
      flush_hyperplane(t, main_ctx_);
      plane_span.arg("points", stats_.points - points_before);
    }
  }
  // Instances landing beyond the last hyperplane would be a bug in the
  // stream construction -- the image bounds cover every written slice.
  for (int64_t t = std::max(t_hi + 1, t_lo); t <= stream_->max_t(); ++t) {
    int64_t stranded = stream_->for_hyperplane(
        t, [](size_t, const std::vector<int64_t>&) {});
    if (stranded > 0)
      fail("unflushed consumer instances remain after the last hyperplane");
  }
  stats_.steals = backend_->steal_count();
  run_span.arg("hyperplanes", stats_.hyperplanes);
  run_span.arg("points", stats_.points);
  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.counter("wavefront.runs").add(1);
  metrics.counter("wavefront.hyperplanes").add(stats_.hyperplanes);
  metrics.counter("wavefront.points").add(stats_.points);
  metrics.counter("wavefront.steals").add(stats_.steals);
  metrics.counter("wavefront.overlapped_flushes").add(stats_.overlapped_flushes);
}

}  // namespace ps
