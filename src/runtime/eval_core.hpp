#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "frontend/sema.hpp"
#include "runtime/bytecode.hpp"
#include "runtime/ndarray.hpp"

namespace ps {

/// Which expression evaluator a runtime engine uses.
enum class EvalEngine {
  /// Equations compiled to typed stack bytecode (default; ~4-6x faster).
  Bytecode,
  /// Direct AST evaluation; kept as the semantic reference and
  /// cross-checked against the bytecode engine in the tests.
  TreeWalk,
  /// Equations JIT-compiled through the C emitter into a shared object
  /// and driven through function pointers (runtime/native_engine.hpp).
  /// Falls back to Bytecode when the module is outside the native
  /// emitter's fragment or no working C compiler is present.
  Native,
};

/// Parse an --engine= value; nullopt for unknown names.
[[nodiscard]] inline std::optional<EvalEngine> parse_eval_engine(
    std::string_view name) {
  if (name == "bytecode") return EvalEngine::Bytecode;
  if (name == "tree-walk") return EvalEngine::TreeWalk;
  if (name == "native") return EvalEngine::Native;
  return std::nullopt;
}

[[nodiscard]] inline const char* eval_engine_name(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::Bytecode: return "bytecode";
    case EvalEngine::TreeWalk: return "tree-walk";
    case EvalEngine::Native: return "native";
  }
  return "?";
}

/// How the bytecode VM dispatches opcodes. Threaded is the default hot
/// path (computed-goto table under GCC/Clang when the build enables
/// PS_BYTECODE_THREADED); Switch is the portable `switch`-in-`while`
/// loop, kept both as the fallback for other compilers and as a
/// differential reference -- the tests cross-check the two bit-exactly.
/// Requesting Threaded where it is not compiled in runs Switch.
enum class BcDispatch {
  Threaded,
  Switch,
};

/// Loop-index bindings of one equation instance. The binding order is
/// the enclosing loop order; lookups scan linearly (nests are shallow).
struct VarFrame {
  std::vector<std::pair<std::string_view, int64_t>> vars;

  [[nodiscard]] const int64_t* find(std::string_view name) const {
    for (const auto& [v, value] : vars)
      if (v == name) return &value;
    return nullptr;
  }
};

/// One untagged stack slot of the bytecode machine; BcProgram records
/// statically which interpretation each value has.
union EvalSlot {
  int64_t i;
  double d;
};

/// Per-worker mutable scratch of the bytecode VM: the evaluation stack,
/// the subscript buffer and the spill area for frames deeper than the
/// inline slots. Callers own one per execution context (the engines
/// keep one per worker / shard) and pass it into run()/eval_store().
///
/// This used to be thread_local inside the VM, which silently coupled
/// every engine instance that happened to share an OS thread -- two
/// concurrent runners (say, two daemon clients driving wavefront
/// executions) could alias each other's scratch. Explicit contexts
/// make the ownership visible and the engines testably independent.
struct EvalScratch {
  std::vector<EvalSlot> stack;
  std::vector<int64_t> idx;        // array-subscript scratch of the VM
  std::vector<int64_t> deep_vars;  // frame spill for deep nests
  std::vector<int64_t> lhs_idx;    // eval_store's target tuple (distinct
                                   // from idx: LHS programs run the VM)
};

/// The shared bytecode execution core: compiles every equation of a
/// module against the module-wide slot layout once, binds the caller's
/// array storage and scalar values to dense slots, and then evaluates
/// equation instances without touching the AST.
///
/// Both runtime engines sit on top of this class: the flowchart
/// `Interpreter` (rectangular schedules) and the `WavefrontRunner`
/// (hyperplane-transformed modules with windowed storage). Evaluation
/// (`run`, `eval_store`) is const and all mutable state lives in the
/// caller-supplied EvalScratch, so one core instance may be shared by
/// every worker of a thread pool -- each worker passing its own
/// scratch -- as long as concurrent writes hit disjoint array cells,
/// exactly the DOALL guarantee both engines schedule under.
class EvalCore {
 public:
  /// Per-equation compiled programs: the RHS and one program per fixed
  /// (non-index-variable) LHS subscript position. Record-target
  /// equations compile one projection program per field into
  /// `field_rhs` instead of `rhs` (which stays empty): eval_store runs
  /// them in ordinal order with the ordinal appended as the trailing
  /// subscript of the target tuple.
  struct EquationPrograms {
    BcProgram rhs;
    std::vector<std::unique_ptr<BcProgram>> lhs_fixed;
    std::vector<BcProgram> field_rhs;
  };

  EvalCore() = default;

  /// Compile every equation of `module`. Throws std::runtime_error on
  /// constructs the bytecode compiler does not support (record values
  /// outside name/element/conditional shapes, nested record fields).
  /// `module` must outlive the core.
  void compile(const CheckedModule& module);

  /// Point the array slots at the caller's storage, keyed by data-item
  /// name. Call after compile() and again if the storage map is rebuilt
  /// (NdArray values must not move afterwards).
  void bind_arrays(std::map<std::string, NdArray, std::less<>>& arrays);

  /// Seed one scalar slot with both integer and real interpretations.
  /// No-op for data items without a scalar slot.
  void set_scalar(size_t data_index, int64_t as_int, double as_real);

  /// Quicken scalar loads against bound slots: every LoadScalarI/D
  /// whose data item can never change during a run (it is not the
  /// target of any equation) and whose slot was bound via set_scalar
  /// is rewritten into the equivalent immediate push, and constant
  /// folding plus superinstruction fusion re-run over the rewritten
  /// programs. Repeated scalar reads then skip the slot indirection
  /// entirely, and guards like `I = M+1` collapse to literal compares
  /// that fold or fuse. The pushed immediates are exactly the bound
  /// values, so results stay bit-identical to the unquickened program.
  ///
  /// Call once, after binding every input scalar. set_scalar on a
  /// quickened slot no longer affects compiled programs (equation-
  /// target scalars are never quickened, so the engines' mid-run
  /// scalar writes keep working), and scalar_referenced() reports the
  /// post-quickening programs. Returns the number of scalar loads
  /// rewritten.
  size_t quicken_scalars();

  /// Toggle the strength-reduced addressing of the fused array reads
  /// (LoadArrayVars): when on (the default) and an array has no
  /// windowed dimension, bounds check and offset fuse into one pass
  /// with no wrap modulo. Off forces the generic path -- the bench's
  /// ablation axis.
  void set_reduced_addressing(bool on) { reduce_addressing_ = on; }
  [[nodiscard]] bool reduced_addressing() const { return reduce_addressing_; }

  /// True when some compiled program reads the scalar slot of
  /// `data_index` (used to decide whether an unbound input matters).
  [[nodiscard]] bool scalar_referenced(size_t data_index) const;

  /// Select the VM dispatch strategy for subsequent run() calls. The
  /// default (Threaded) is the fastest available loop; Switch forces
  /// the portable reference dispatcher.
  void set_dispatch(BcDispatch dispatch) { dispatch_ = dispatch; }
  [[nodiscard]] BcDispatch dispatch() const { return dispatch_; }

  /// True when this build carries the computed-goto dispatcher (GCC or
  /// Clang with the PS_BYTECODE_THREADED CMake toggle on). When false,
  /// BcDispatch::Threaded silently executes the switch loop.
  [[nodiscard]] static bool threaded_dispatch_available();

  /// Execute one compiled program against the frame's index bindings,
  /// using `scratch` for every mutable buffer. Programs may bind any
  /// number of index variables: frames up to 8 variables live on the VM
  /// stack frame, deeper nests spill into the scratch.
  [[nodiscard]] EvalSlot run(const BcProgram& program, const VarFrame& frame,
                             EvalScratch& scratch) const;

  /// RHS value of equation `eq` as a double (ints promoted).
  [[nodiscard]] double eval_rhs_real(const CheckedEquation& eq,
                                     const VarFrame& frame,
                                     EvalScratch& scratch) const;

  /// Resolve the LHS target index tuple of `eq` into `idx`.
  void lhs_index(const CheckedEquation& eq, const VarFrame& frame,
                 EvalScratch& scratch, std::vector<int64_t>& idx) const;

  /// One full instance of an array-targeted equation: evaluate the RHS,
  /// resolve the LHS subscripts and store the value (bounds-checked).
  void eval_store(const CheckedEquation& eq, const VarFrame& frame,
                  EvalScratch& scratch) const;

  [[nodiscard]] const EquationPrograms& programs(size_t eq_index) const {
    return programs_[eq_index];
  }
  [[nodiscard]] const BcLayout& layout() const { return layout_; }
  [[nodiscard]] bool compiled() const { return module_ != nullptr; }

  /// Compile-time statistics over all programs of the module (after
  /// folding and fusion), for `psc --verbose` and the tests.
  [[nodiscard]] size_t total_instructions() const {
    return total_instructions_;
  }
  [[nodiscard]] size_t folded_instructions() const {
    return folded_instructions_;
  }
  [[nodiscard]] size_t fused_instructions() const {
    return fused_instructions_;
  }
  [[nodiscard]] size_t quickened_instructions() const {
    return quickened_instructions_;
  }

 private:
  [[nodiscard]] EvalSlot exec_switch(const BcProgram& program,
                                     const int64_t* vars,
                                     EvalScratch& scratch) const;
  [[nodiscard]] EvalSlot exec_threaded(const BcProgram& program,
                                       const int64_t* vars,
                                       EvalScratch& scratch) const;

  const CheckedModule* module_ = nullptr;
  BcLayout layout_;
  std::vector<EquationPrograms> programs_;   // by equation index
  std::vector<NdArray*> array_table_;        // by array slot
  std::vector<int64_t> scalar_i_;            // by scalar slot
  std::vector<double> scalar_d_;
  std::vector<uint8_t> scalar_bound_;        // by scalar slot (set_scalar)
  BcDispatch dispatch_ = BcDispatch::Threaded;
  bool reduce_addressing_ = true;
  size_t total_instructions_ = 0;
  size_t folded_instructions_ = 0;
  size_t fused_instructions_ = 0;
  size_t quickened_instructions_ = 0;
};

}  // namespace ps
