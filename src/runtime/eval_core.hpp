#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "frontend/sema.hpp"
#include "runtime/bytecode.hpp"
#include "runtime/ndarray.hpp"

namespace ps {

/// Which expression evaluator a runtime engine uses.
enum class EvalEngine {
  /// Equations compiled to typed stack bytecode (default; ~4-6x faster).
  Bytecode,
  /// Direct AST evaluation; kept as the semantic reference and
  /// cross-checked against the bytecode engine in the tests.
  TreeWalk,
};

/// Loop-index bindings of one equation instance. The binding order is
/// the enclosing loop order; lookups scan linearly (nests are shallow).
struct VarFrame {
  std::vector<std::pair<std::string_view, int64_t>> vars;

  [[nodiscard]] const int64_t* find(std::string_view name) const {
    for (const auto& [v, value] : vars)
      if (v == name) return &value;
    return nullptr;
  }
};

/// One untagged stack slot of the bytecode machine; BcProgram records
/// statically which interpretation each value has.
union EvalSlot {
  int64_t i;
  double d;
};

/// The shared bytecode execution core: compiles every equation of a
/// module against the module-wide slot layout once, binds the caller's
/// array storage and scalar values to dense slots, and then evaluates
/// equation instances without touching the AST.
///
/// Both runtime engines sit on top of this class: the flowchart
/// `Interpreter` (rectangular schedules) and the `WavefrontRunner`
/// (hyperplane-transformed modules with windowed storage). Evaluation
/// (`run`, `eval_store`) is const and uses thread-local scratch, so one
/// core instance may be shared by every worker of a thread pool as long
/// as concurrent writes hit disjoint array cells -- exactly the DOALL
/// guarantee both engines schedule under.
class EvalCore {
 public:
  /// Per-equation compiled programs: the RHS and one program per fixed
  /// (non-index-variable) LHS subscript position.
  struct EquationPrograms {
    BcProgram rhs;
    std::vector<std::unique_ptr<BcProgram>> lhs_fixed;
  };

  EvalCore() = default;

  /// Compile every equation of `module`. Throws std::runtime_error on
  /// constructs the bytecode compiler does not support (record fields).
  /// `module` must outlive the core.
  void compile(const CheckedModule& module);

  /// Point the array slots at the caller's storage, keyed by data-item
  /// name. Call after compile() and again if the storage map is rebuilt
  /// (NdArray values must not move afterwards).
  void bind_arrays(std::map<std::string, NdArray, std::less<>>& arrays);

  /// Seed one scalar slot with both integer and real interpretations.
  /// No-op for data items without a scalar slot.
  void set_scalar(size_t data_index, int64_t as_int, double as_real);

  /// True when some compiled program reads the scalar slot of
  /// `data_index` (used to decide whether an unbound input matters).
  [[nodiscard]] bool scalar_referenced(size_t data_index) const;

  /// run() resolves at most this many index variables per program.
  static constexpr size_t kMaxVars = 8;

  /// True when every compiled program stays within run()'s fixed
  /// limits; callers with a fallback evaluator should check this before
  /// committing to the bytecode path (run() throws otherwise).
  [[nodiscard]] bool within_run_limits() const;

  /// Execute one compiled program against the frame's index bindings.
  [[nodiscard]] EvalSlot run(const BcProgram& program,
                             const VarFrame& frame) const;

  /// RHS value of equation `eq` as a double (ints promoted).
  [[nodiscard]] double eval_rhs_real(const CheckedEquation& eq,
                                     const VarFrame& frame) const;

  /// Resolve the LHS target index tuple of `eq` into `idx`.
  void lhs_index(const CheckedEquation& eq, const VarFrame& frame,
                 std::vector<int64_t>& idx) const;

  /// One full instance of an array-targeted equation: evaluate the RHS,
  /// resolve the LHS subscripts and store the value (bounds-checked).
  void eval_store(const CheckedEquation& eq, const VarFrame& frame) const;

  [[nodiscard]] const EquationPrograms& programs(size_t eq_index) const {
    return programs_[eq_index];
  }
  [[nodiscard]] const BcLayout& layout() const { return layout_; }
  [[nodiscard]] bool compiled() const { return module_ != nullptr; }

 private:
  const CheckedModule* module_ = nullptr;
  BcLayout layout_;
  std::vector<EquationPrograms> programs_;   // by equation index
  std::vector<NdArray*> array_table_;        // by array slot
  std::vector<int64_t> scalar_i_;            // by scalar slot
  std::vector<double> scalar_d_;
};

}  // namespace ps
