#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>

namespace ps {

/// An exact rational number over int64, always stored in lowest terms
/// with a positive denominator. Used by the hyperplane transform for
/// exact matrix inversion of unimodular coordinate changes.
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(int64_t value) : num_(value) {}  // NOLINT(google-explicit-constructor)
  Rational(int64_t num, int64_t den) : num_(num), den_(den) { normalize(); }

  [[nodiscard]] constexpr int64_t num() const { return num_; }
  [[nodiscard]] constexpr int64_t den() const { return den_; }

  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] bool is_zero() const { return num_ == 0; }

  /// The integer value; throws if not an integer.
  [[nodiscard]] int64_t as_integer() const {
    if (den_ != 1) throw std::domain_error("Rational is not an integer");
    return num_;
  }

  [[nodiscard]] double as_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return Rational(a.num_ * b.num_, a.den_ * b.den_);
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw std::domain_error("Rational division by zero");
    return Rational(a.num_ * b.den_, a.den_ * b.num_);
  }
  Rational operator-() const { return Rational(-num_, den_); }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return a.num_ * b.den_ < b.num_ * a.den_;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

  [[nodiscard]] std::string to_string() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  void normalize() {
    if (den_ == 0) throw std::domain_error("Rational with zero denominator");
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  int64_t num_ = 0;
  int64_t den_ = 1;
};

}  // namespace ps
