#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace ps {

/// A small dense integer matrix used for affine loop transformations.
/// Sizes are tiny (loop-nest depth, at most ~8), so everything is done
/// exactly: determinants via rational Gaussian elimination, inverses via
/// Gauss-Jordan over Rational.
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}
  IntMatrix(std::initializer_list<std::initializer_list<int64_t>> init);

  static IntMatrix identity(size_t n);

  [[nodiscard]] size_t rows() const { return rows_; }
  [[nodiscard]] size_t cols() const { return cols_; }

  int64_t& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] int64_t at(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::vector<int64_t> row(size_t r) const;
  void set_row(size_t r, const std::vector<int64_t>& values);

  /// Matrix * matrix product; dimensions must agree.
  [[nodiscard]] IntMatrix multiply(const IntMatrix& other) const;

  /// Matrix * column-vector product.
  [[nodiscard]] std::vector<int64_t> apply(
      const std::vector<int64_t>& vec) const;

  /// Exact determinant (square matrices only).
  [[nodiscard]] Rational determinant() const;

  /// Exact inverse if it exists and is integral (|det| = 1 guarantees
  /// this); nullopt when singular or non-integral.
  [[nodiscard]] std::optional<IntMatrix> integer_inverse() const;

  [[nodiscard]] bool is_unimodular() const {
    if (rows_ != cols_) return false;
    Rational d = determinant();
    return d == Rational(1) || d == Rational(-1);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const IntMatrix&, const IntMatrix&) = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int64_t> data_;
};

/// Greatest common divisor of a vector (gcd of absolute values; 0 for an
/// empty or all-zero vector).
[[nodiscard]] int64_t vector_gcd(const std::vector<int64_t>& values);

/// Dot product of two equally sized integer vectors.
[[nodiscard]] int64_t dot(const std::vector<int64_t>& a,
                          const std::vector<int64_t>& b);

/// Complete the primitive row vector `first_row` (gcd of entries must be 1)
/// to an n x n unimodular matrix whose first row is `first_row`.
///
/// Strategy (matching the paper / Lamport [10]): if some coefficient
/// `first_row[j]` is +-1, use unit-vector rows for all coordinates except
/// `j` -- this reproduces the paper's choice K'=2K+I+J, I'=K, J'=I for
/// coefficients (2,1,1). Otherwise fall back to an extended-gcd column
/// reduction that works for any primitive vector.
/// Returns nullopt when gcd(first_row) != 1.
[[nodiscard]] std::optional<IntMatrix> unimodular_completion(
    const std::vector<int64_t>& first_row);

}  // namespace ps
