#pragma once

#include <cstdio>
#include <string>

namespace ps {

// Shared formatting helpers of the report renderers (the batch driver's
// --batch-report and the compile service's cached-report variant), so
// the two surfaces cannot drift apart.

/// Milliseconds with fixed three-decimal precision.
inline std::string format_ms_fixed(double ms) {
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

/// Minimal JSON string escaping (RFC 8259: quotes, backslashes and all
/// control characters).
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          snprintf(buffer, sizeof(buffer), "\\u%04x",
                   static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace ps
