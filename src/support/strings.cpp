#include "support/strings.hpp"

#include <cctype>

namespace ps {

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& ch : out) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return out;
}

std::string repeat(std::string_view unit, size_t n) {
  std::string out;
  out.reserve(unit.size() * n);
  for (size_t i = 0; i < n; ++i) out.append(unit);
  return out;
}

}  // namespace ps
