#pragma once

#include <cstdint>
#include <string>

namespace ps {

/// A position in a PS source buffer. Lines and columns are 1-based;
/// offset is the 0-based byte offset into the buffer.
struct SourceLoc {
  uint32_t line = 0;
  uint32_t column = 0;
  uint32_t offset = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// A half-open range [begin, end) in a source buffer.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  [[nodiscard]] bool valid() const { return begin.valid(); }
  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace ps
