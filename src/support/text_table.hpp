#pragma once

#include <string>
#include <vector>

namespace ps {

/// A minimal fixed-width text table renderer, used by the bench binaries
/// to print the paper's figure/table reproductions (e.g. Figure 5's
/// component table) in a stable, diffable format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] size_t row_count() const { return rows_.size(); }

  /// Render with a header rule, e.g.
  ///   Component | Node(s)  | Flowchart
  ///   ----------+----------+----------
  ///   1         | InitialA | (null)
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ps
