#include "support/diagnostics.hpp"

#include <sstream>

namespace ps {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

void DiagnosticEngine::set_source(std::string_view source,
                                  std::string file_name) {
  source_ = std::string(source);
  file_name_ = std::move(file_name);
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  add(Severity::Note, loc, std::move(message));
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  add(Severity::Warning, loc, std::move(message));
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  add(Severity::Error, loc, std::move(message));
}

void DiagnosticEngine::add(Severity severity, SourceLoc loc,
                           std::string message) {
  if (severity == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{severity, loc, std::move(message)});
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

std::vector<std::string> DiagnosticEngine::messages(Severity severity) const {
  std::vector<std::string> out;
  for (const auto& d : diags_) {
    if (d.severity == severity) out.push_back(d.message);
  }
  return out;
}

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << file_name_;
    if (d.loc.valid()) os << ':' << d.loc.line << ':' << d.loc.column;
    os << ": " << severity_name(d.severity) << ": " << d.message << '\n';
    if (d.loc.valid() && !source_.empty()) {
      // Find the start of the offending line.
      size_t begin = d.loc.offset < source_.size() ? d.loc.offset : 0;
      while (begin > 0 && source_[begin - 1] != '\n') --begin;
      size_t end = begin;
      while (end < source_.size() && source_[end] != '\n') ++end;
      os << "  " << source_.substr(begin, end - begin) << '\n';
      os << "  ";
      for (uint32_t i = 1; i < d.loc.column; ++i) os << ' ';
      os << "^\n";
    }
  }
  return os.str();
}

}  // namespace ps
