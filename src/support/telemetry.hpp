#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include <map>
#include <vector>

namespace ps {

// ---------------------------------------------------------------------------
// Unified telemetry: one process-wide metrics registry (counters, gauges,
// latency histograms) plus one trace session recording structured spans
// into per-thread ring buffers, flushed as Chrome trace-event JSON.
//
// Every timing surface of the system reads from (or writes through) this
// layer: pass timings, batch units, engine tier decisions, native `cc`
// compiles, wavefront hyperplanes, cache traffic and the daemon's
// queue-wait / service-time distributions. The design constraint is that
// the *disabled* trace path costs one relaxed atomic load and nothing
// else (BM_TelemetryOverhead holds it to ~1ns), so instrumentation can
// sit on hot paths permanently.
// ---------------------------------------------------------------------------

/// Microseconds on the steady clock since the process-wide trace epoch
/// (captured on first use). The `ts` domain of every trace event.
[[nodiscard]] int64_t trace_now_us();

// -- metrics ----------------------------------------------------------------

/// A monotonically increasing counter. Thread-safe, lock-free.
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-value-wins level (queue depth, open connections). Thread-safe.
class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over milliseconds: exponential
/// bucket bounds 0.001ms * 2^i (1us, 2us, 4us, ... ~4.8h) plus one
/// overflow bucket. record() is lock-free; percentiles interpolate
/// linearly inside the winning bucket, clamped to the recorded maximum.
class Histogram {
 public:
  static constexpr size_t kBuckets = 36;

  /// Upper bound of bucket `i` in ms; the last bucket is unbounded
  /// (returns infinity).
  [[nodiscard]] static double bucket_limit(size_t i);
  /// The bucket a value of `ms` lands in.
  [[nodiscard]] static size_t bucket_for(double ms);

  void record(double ms);

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double max() const;
  /// The p-th percentile (0..100) of recorded values in ms; 0 when the
  /// histogram is empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // double bits, CAS-accumulated
  std::atomic<uint64_t> max_bits_{0};  // double bits, CAS-maximised
};

/// The process-wide metrics registry. Instruments are created on first
/// use by name and live for the process (handles returned here are
/// stable pointers -- cache them on hot paths); reset() zeroes every
/// instrument in place without invalidating handles, which is how a
/// fresh CompileService session starts from clean numbers in tests.
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Zero every instrument (names and handles stay valid).
  void reset();

  /// Aligned text rendering (psc --metrics), names sorted.
  [[nodiscard]] std::string render_text() const;
  /// JSON rendering (psc --metrics --json):
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] std::string render_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// -- tracing ----------------------------------------------------------------

/// The one global the disabled-path check reads. Constant-initialised,
/// so there is no static-init-order hazard; only TraceSession writes it.
inline std::atomic<bool> g_trace_enabled{false};

/// One completed span as stored in a thread's ring buffer.
struct TraceEvent {
  std::string name;
  std::string cat;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;
  /// Pre-rendered JSON object *body* ("k":"v",...), empty = no args.
  std::string args_json;
};

/// Records spans into per-thread ring buffers and flushes them as
/// Chrome trace-event / Perfetto-compatible JSON (load the file in
/// chrome://tracing or ui.perfetto.dev). Each OS thread gets its own
/// fixed-capacity ring: recording never blocks another thread, worker
/// lanes show up as separate tid rows in the viewer for free, and a
/// runaway producer overwrites its own oldest events (counted in
/// dropped_events()) instead of growing without bound.
class TraceSession {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 14;

  [[nodiscard]] static TraceSession& global();

  /// The gate every span checks first: one relaxed atomic load.
  [[nodiscard]] static bool enabled() {
    return g_trace_enabled.load(std::memory_order_relaxed);
  }

  void enable(size_t ring_capacity = kDefaultRingCapacity);
  void disable();

  /// Append one completed span to the calling thread's ring. No-op
  /// when the session is disabled.
  void record(std::string_view name, std::string_view cat, int64_t ts_us,
              int64_t dur_us, std::string args_json = {});

  /// Merge every thread's ring (sorted by start time) into one
  /// trace-event JSON document and clear the buffers.
  [[nodiscard]] std::string flush_json();

  /// Events overwritten before a flush, across all threads.
  [[nodiscard]] uint64_t dropped_events() const;

  /// Drop all buffered events (without rendering) and zero dropped().
  void clear();

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    uint32_t tid = 0;
    size_t capacity = 0;
    std::vector<TraceEvent> ring;  // ring.size() <= capacity
    size_t head = 0;               // next slot once the ring is full
    uint64_t dropped = 0;
  };

  [[nodiscard]] std::shared_ptr<ThreadBuffer> buffer_for_this_thread();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  size_t ring_capacity_ = kDefaultRingCapacity;
  uint32_t next_tid_ = 1;
};

/// Append one escaped "key":"value" (or "key":N) pair to a trace-args
/// JSON body. Shared with the renderers; exposed for tests.
void trace_args_append(std::string& body, std::string_view key,
                       std::string_view value);
void trace_args_append(std::string& body, std::string_view key,
                       int64_t value);

/// RAII span gated on TraceSession::enabled(): when tracing is off the
/// constructor is one relaxed load and the destructor one branch --
/// nothing else happens, no clock is read. `name`/`cat` must outlive
/// the span (string literals in practice).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (!TraceSession::enabled()) return;
    live_ = true;
    name_ = name;
    cat_ = cat;
    start_us_ = trace_now_us();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (live_) finish();
  }

  [[nodiscard]] bool live() const { return live_; }

  void arg(std::string_view key, std::string_view value) {
    if (live_) trace_args_append(args_, key, value);
  }
  void arg(std::string_view key, int64_t value) {
    if (live_) trace_args_append(args_, key, value);
  }

  /// End the span now (idempotent); the destructor is the usual path.
  void finish();

 private:
  bool live_ = false;
  int64_t start_us_ = 0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::string args_;
};

/// A span that *always* reads the clock because its caller needs the
/// elapsed time regardless of tracing -- the single timing source
/// behind PassTiming, batch unit times and the daemon's service-time
/// histogram: one pair of clock reads feeds the caller's number, the
/// trace event (when enabled) and any histogram the caller records
/// into, so the old parallel hand-rolled timing structs are gone.
class TimedSpan {
 public:
  TimedSpan(const char* name, const char* cat)
      : name_(name), cat_(cat), start_us_(trace_now_us()) {}
  TimedSpan(const TimedSpan&) = delete;
  TimedSpan& operator=(const TimedSpan&) = delete;
  ~TimedSpan() {
    if (!finished_) (void)finish_ms();
  }

  void arg(std::string_view key, std::string_view value) {
    if (TraceSession::enabled()) trace_args_append(args_, key, value);
  }
  void arg(std::string_view key, int64_t value) {
    if (TraceSession::enabled()) trace_args_append(args_, key, value);
  }

  /// End the span: emits the trace event when the session is enabled
  /// and returns the elapsed wall milliseconds either way.
  double finish_ms();

 private:
  const char* name_;
  const char* cat_;
  int64_t start_us_;
  std::string args_;
  bool finished_ = false;
};

}  // namespace ps
