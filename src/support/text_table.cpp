#include "support/text_table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ps {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable::add_row: wrong cell count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace ps
