#include "support/interner.hpp"

namespace ps {

std::string_view StringInterner::intern(std::string_view text) {
  Shard& shard = shards_[Hash{}(text) % kShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.strings.find(text);
  if (it == shard.strings.end())
    it = shard.strings.emplace(text).first;
  // References into an unordered_set survive rehashing (node storage),
  // so the view stays valid for the interner's lifetime.
  return std::string_view(*it);
}

size_t StringInterner::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.strings.size();
  }
  return total;
}

}  // namespace ps
