#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ps {

/// Streaming SHA-256. The artifact cache addresses compiled units by
/// content hash -- hash(compiler version, compile options, unit name,
/// source bytes) -- so the digest must be collision-resistant across
/// millions of cached units, not merely well-distributed the way a
/// table hash is. Self-contained (no external crypto dependency);
/// FIPS 180-4 test vectors are pinned in tests/support/hash_test.cpp.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, size_t len);
  void update(std::string_view text) { update(text.data(), text.size()); }

  /// Finalise and return the 32-byte digest. The object must be reset()
  /// before further updates.
  [[nodiscard]] std::array<uint8_t, 32> digest();

  /// Finalise and return the digest as 64 lowercase hex characters.
  [[nodiscard]] std::string hex_digest();

 private:
  void process_block(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// One-shot convenience: 64-char lowercase hex SHA-256 of `text`.
[[nodiscard]] std::string sha256_hex(std::string_view text);

}  // namespace ps
