#pragma once

#include <string>
#include <vector>

namespace ps {

/// Emits Graphviz DOT text for dependency-graph visualisation
/// (reproduction of the paper's Figure 3).
class DotWriter {
 public:
  explicit DotWriter(std::string graph_name = "G");

  /// Add a node with an id, display label and optional shape.
  void add_node(const std::string& id, const std::string& label,
                const std::string& shape = "ellipse");

  /// Add a directed edge with an optional label and style.
  void add_edge(const std::string& from, const std::string& to,
                const std::string& label = "",
                const std::string& style = "");

  [[nodiscard]] std::string render() const;

  /// Escape a string for use inside a DOT double-quoted literal.
  static std::string escape(const std::string& s);

 private:
  std::string name_;
  std::vector<std::string> lines_;
};

}  // namespace ps
