#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace ps {

enum class Severity { Note, Warning, Error };

/// One compiler diagnostic: severity, location and message text.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics emitted by any compiler phase.
///
/// The engine never throws and never prints on its own; callers inspect
/// `has_errors()` after a phase and render with `render()` when needed.
class DiagnosticEngine {
 public:
  DiagnosticEngine() = default;

  /// Attach the source buffer so rendered diagnostics can quote the
  /// offending line. Optional; rendering degrades gracefully without it.
  void set_source(std::string_view source, std::string file_name = "<input>");

  void note(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// The file-name label attached by set_source (telemetry spans tag
  /// per-pass trace events with it).
  [[nodiscard]] const std::string& file_name() const { return file_name_; }

  /// Render all diagnostics as "file:line:col: severity: message" lines,
  /// each followed by the quoted source line and a caret when the source
  /// buffer is available.
  [[nodiscard]] std::string render() const;

  /// Convenience: messages of all diagnostics of the given severity.
  [[nodiscard]] std::vector<std::string> messages(Severity severity) const;

  void clear();

 private:
  void add(Severity severity, SourceLoc loc, std::string message);

  std::vector<Diagnostic> diags_;
  std::string source_;
  std::string file_name_ = "<input>";
  size_t error_count_ = 0;
};

[[nodiscard]] std::string_view severity_name(Severity severity);

}  // namespace ps
