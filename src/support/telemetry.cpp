#include "support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "support/report_format.hpp"
#include "support/text_table.hpp"

namespace ps {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Force the epoch to be captured as early as any telemetry use.
[[maybe_unused]] const int64_t g_epoch_init = (trace_epoch(), 0);

double bits_to_double(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t double_to_bits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

std::string format_fixed(double v) { return format_ms_fixed(v); }

}  // namespace

int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               trace_epoch())
      .count();
}

// -- Histogram --------------------------------------------------------------

double Histogram::bucket_limit(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  // 0.001ms * 2^i: 1us, 2us, 4us ... ~4.8 hours.
  return 0.001 * static_cast<double>(uint64_t{1} << i);
}

size_t Histogram::bucket_for(double ms) {
  if (!(ms > 0)) return 0;  // negatives and NaN land in the first bucket
  double limit = 0.001;
  for (size_t i = 0; i + 1 < kBuckets; ++i) {
    if (ms <= limit) return i;
    limit *= 2.0;
  }
  return kBuckets - 1;
}

void Histogram::record(double ms) {
  buckets_[bucket_for(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected, double_to_bits(bits_to_double(expected) + ms),
      std::memory_order_relaxed)) {
  }
  expected = max_bits_.load(std::memory_order_relaxed);
  while (bits_to_double(expected) < ms &&
         !max_bits_.compare_exchange_weak(expected, double_to_bits(ms),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return bits_to_double(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return bits_to_double(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::percentile(double p) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // The rank of the percentile among `total` samples (nearest-rank,
  // 1-based), then a linear interpolation inside the winning bucket.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      double lower = i == 0 ? 0.0 : bucket_limit(i - 1);
      double upper = bucket_limit(i);
      // The unbounded tail (and any bucket) never reports beyond the
      // recorded maximum.
      if (std::isinf(upper)) return max();
      double fraction = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
      return std::min(lower + (upper - lower) * fraction, max());
    }
    cumulative += in_bucket;
  }
  return max();
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
}

// -- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsRegistry::render_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  if (!counters_.empty()) {
    TextTable table({"Counter", "Value"});
    for (const auto& [name, counter] : counters_)
      table.add_row({name, std::to_string(counter->value())});
    os << table.render();
  }
  if (!gauges_.empty()) {
    TextTable table({"Gauge", "Value"});
    for (const auto& [name, gauge] : gauges_)
      table.add_row({name, std::to_string(gauge->value())});
    os << table.render();
  }
  if (!histograms_.empty()) {
    TextTable table({"Histogram", "Count", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                     "Max (ms)"});
    for (const auto& [name, h] : histograms_)
      table.add_row({name, std::to_string(h->count()),
                     format_fixed(h->percentile(50)),
                     format_fixed(h->percentile(95)),
                     format_fixed(h->percentile(99)), format_fixed(h->max())});
    os << table.render();
  }
  std::string out = os.str();
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << counter->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << gauge->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": {\"count\": " << h->count()
       << ", \"sum_ms\": " << format_fixed(h->sum())
       << ", \"p50\": " << format_fixed(h->percentile(50))
       << ", \"p95\": " << format_fixed(h->percentile(95))
       << ", \"p99\": " << format_fixed(h->percentile(99))
       << ", \"max\": " << format_fixed(h->max()) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

// -- TraceSession -----------------------------------------------------------

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

void TraceSession::enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_capacity_ = std::max<size_t>(ring_capacity, 16);
  }
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceSession::disable() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
}

std::shared_ptr<TraceSession::ThreadBuffer>
TraceSession::buffer_for_this_thread() {
  // The shared_ptr is held both thread-locally (fast path) and in the
  // session's list (so a thread's events survive its exit until the
  // next flush). One thread-local per process-wide session is enough:
  // there is exactly one global session.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    auto fresh = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mutex_);
    fresh->tid = next_tid_++;
    fresh->capacity = ring_capacity_;
    fresh->ring.reserve(std::min<size_t>(fresh->capacity, 1024));
    buffers_.push_back(fresh);
    buffer = std::move(fresh);
  }
  return buffer;
}

void TraceSession::record(std::string_view name, std::string_view cat,
                          int64_t ts_us, int64_t dur_us,
                          std::string args_json) {
  if (!enabled()) return;
  std::shared_ptr<ThreadBuffer> buffer = buffer_for_this_thread();
  TraceEvent event;
  event.name = std::string(name);
  event.cat = std::string(cat);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = buffer->tid;
  event.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (buffer->ring.size() < buffer->capacity) {
    buffer->ring.push_back(std::move(event));
  } else {
    // Full: overwrite the oldest slot (the ring runs head-first once
    // saturated) and count the loss instead of growing without bound.
    buffer->ring[buffer->head] = std::move(event);
    buffer->head = (buffer->head + 1) % buffer->capacity;
    ++buffer->dropped;
  }
}

std::string TraceSession::flush_json() {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      // Oldest-first: the saturated ring starts at head.
      for (size_t i = 0; i < buffer->ring.size(); ++i) {
        size_t idx = buffer->ring.size() == buffer->capacity
                         ? (buffer->head + i) % buffer->capacity
                         : i;
        events.push_back(buffer->ring[idx]);
      }
      buffer->ring.clear();
      buffer->head = 0;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n")
       << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us;
    if (!e.args_json.empty()) os << ",\"args\":{" << e.args_json << "}";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

uint64_t TraceSession::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->head = 0;
    buffer->dropped = 0;
  }
}

// -- span helpers -----------------------------------------------------------

void trace_args_append(std::string& body, std::string_view key,
                       std::string_view value) {
  if (!body.empty()) body += ',';
  body += '"';
  body += json_escape(std::string(key));
  body += "\":\"";
  body += json_escape(std::string(value));
  body += '"';
}

void trace_args_append(std::string& body, std::string_view key,
                       int64_t value) {
  if (!body.empty()) body += ',';
  body += '"';
  body += json_escape(std::string(key));
  body += "\":";
  body += std::to_string(value);
}

void TraceSpan::finish() {
  if (!live_) return;
  live_ = false;
  int64_t end_us = trace_now_us();
  TraceSession::global().record(name_, cat_, start_us_, end_us - start_us_,
                                std::move(args_));
}

double TimedSpan::finish_ms() {
  finished_ = true;
  int64_t end_us = trace_now_us();
  int64_t dur_us = end_us - start_us_;
  if (TraceSession::enabled())
    TraceSession::global().record(name_, cat_, start_us_, dur_us,
                                  std::move(args_));
  return static_cast<double>(dur_us) / 1000.0;
}

}  // namespace ps
