#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

namespace ps {

/// A thread-safe string interner: every distinct spelling is stored
/// once and handed out as a stable std::string_view. The batch driver
/// shares one interner across all workers as the batch-wide symbol
/// table: module and data-item spellings from every unit are folded
/// into it concurrently, so `distinct_symbols` reports the true
/// cross-batch vocabulary (N copies of one module contribute its names
/// once).
///
/// Sharded by string hash: concurrent interning of different strings
/// rarely contends on the same mutex. Views stay valid for the lifetime
/// of the interner (node-based storage; strings never move or vanish).
class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Return the canonical view of `text`, inserting it on first sight.
  std::string_view intern(std::string_view text);

  /// Distinct strings interned so far (across all shards).
  [[nodiscard]] size_t size() const;

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_set<std::string, Hash, Eq> strings;
  };

  static constexpr size_t kShards = 16;
  Shard shards_[kShards];
};

}  // namespace ps
