#include "support/matrix.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ps {

IntMatrix::IntMatrix(
    std::initializer_list<std::initializer_list<int64_t>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_)
      throw std::invalid_argument("IntMatrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

IntMatrix IntMatrix::identity(size_t n) {
  IntMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

std::vector<int64_t> IntMatrix::row(size_t r) const {
  std::vector<int64_t> out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = at(r, c);
  return out;
}

void IntMatrix::set_row(size_t r, const std::vector<int64_t>& values) {
  if (values.size() != cols_)
    throw std::invalid_argument("IntMatrix::set_row: size mismatch");
  for (size_t c = 0; c < cols_; ++c) at(r, c) = values[c];
}

IntMatrix IntMatrix::multiply(const IntMatrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("IntMatrix::multiply: dimension mismatch");
  IntMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t k = 0; k < cols_; ++k) {
      int64_t v = at(i, k);
      if (v == 0) continue;
      for (size_t j = 0; j < other.cols_; ++j)
        out.at(i, j) += v * other.at(k, j);
    }
  return out;
}

std::vector<int64_t> IntMatrix::apply(const std::vector<int64_t>& vec) const {
  if (vec.size() != cols_)
    throw std::invalid_argument("IntMatrix::apply: dimension mismatch");
  std::vector<int64_t> out(rows_, 0);
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = 0; j < cols_; ++j) out[i] += at(i, j) * vec[j];
  return out;
}

Rational IntMatrix::determinant() const {
  if (rows_ != cols_)
    throw std::invalid_argument("IntMatrix::determinant: not square");
  size_t n = rows_;
  std::vector<Rational> work(n * n);
  for (size_t i = 0; i < n * n; ++i) work[i] = Rational(data_[i]);
  auto w = [&](size_t r, size_t c) -> Rational& { return work[r * n + c]; };

  Rational det(1);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && w(pivot, col).is_zero()) ++pivot;
    if (pivot == n) return Rational(0);
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(w(pivot, c), w(col, c));
      det = -det;
    }
    det *= w(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      if (w(r, col).is_zero()) continue;
      Rational factor = w(r, col) / w(col, col);
      for (size_t c = col; c < n; ++c) w(r, c) -= factor * w(col, c);
    }
  }
  return det;
}

std::optional<IntMatrix> IntMatrix::integer_inverse() const {
  if (rows_ != cols_) return std::nullopt;
  size_t n = rows_;
  // Gauss-Jordan over rationals on [A | I].
  std::vector<Rational> work(n * 2 * n);
  auto w = [&](size_t r, size_t c) -> Rational& { return work[r * 2 * n + c]; };
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) w(r, c) = Rational(at(r, c));
    w(r, n + r) = Rational(1);
  }
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && w(pivot, col).is_zero()) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col)
      for (size_t c = 0; c < 2 * n; ++c) std::swap(w(pivot, c), w(col, c));
    Rational inv = Rational(1) / w(col, col);
    for (size_t c = 0; c < 2 * n; ++c) w(col, c) *= inv;
    for (size_t r = 0; r < n; ++r) {
      if (r == col || w(r, col).is_zero()) continue;
      Rational factor = w(r, col);
      for (size_t c = 0; c < 2 * n; ++c) w(r, c) -= factor * w(col, c);
    }
  }
  IntMatrix out(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) {
      if (!w(r, n + c).is_integer()) return std::nullopt;
      out.at(r, c) = w(r, n + c).as_integer();
    }
  return out;
}

std::string IntMatrix::to_string() const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << at(r, c);
    }
    os << "]";
    os << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

int64_t vector_gcd(const std::vector<int64_t>& values) {
  int64_t g = 0;
  for (int64_t v : values) g = std::gcd(g, v < 0 ? -v : v);
  return g;
}

int64_t dot(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("dot: size mismatch");
  int64_t s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

namespace {

/// Column-reduce `a` to (1, 0, ..., 0) with unimodular column operations,
/// mirroring each operation on `v` (initially identity). On return
/// a_original * v == e1, so v^-1 has first row a_original.
std::optional<IntMatrix> gcd_completion(std::vector<int64_t> a) {
  size_t n = a.size();
  IntMatrix v = IntMatrix::identity(n);
  auto col_sub = [&](size_t target, size_t source, int64_t q) {
    // column[target] -= q * column[source]
    a[target] -= q * a[source];
    for (size_t r = 0; r < n; ++r) v.at(r, target) -= q * v.at(r, source);
  };
  auto col_swap = [&](size_t i, size_t j) {
    std::swap(a[i], a[j]);
    for (size_t r = 0; r < n; ++r) std::swap(v.at(r, i), v.at(r, j));
  };
  auto col_negate = [&](size_t i) {
    a[i] = -a[i];
    for (size_t r = 0; r < n; ++r) v.at(r, i) = -v.at(r, i);
  };

  while (true) {
    // Find the nonzero entry of smallest magnitude.
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (a[i] == 0) continue;
      if (best == n || std::abs(a[i]) < std::abs(a[best])) best = i;
    }
    if (best == n) return std::nullopt;  // all-zero vector
    bool others = false;
    for (size_t i = 0; i < n; ++i) {
      if (i == best || a[i] == 0) continue;
      others = true;
      int64_t q = a[i] / a[best];
      col_sub(i, best, q);
    }
    if (!others) {
      if (std::abs(a[best]) != 1) return std::nullopt;  // gcd != 1
      if (a[best] < 0) col_negate(best);
      if (best != 0) col_swap(best, 0);
      break;
    }
  }
  return v.integer_inverse();
}

}  // namespace

std::optional<IntMatrix> unimodular_completion(
    const std::vector<int64_t>& first_row) {
  size_t n = first_row.size();
  if (n == 0 || vector_gcd(first_row) != 1) return std::nullopt;

  // Lamport-style completion: omit the last coordinate whose coefficient
  // is +-1 and use unit-vector rows for the rest. The determinant of the
  // resulting matrix is +-first_row[omit], hence unimodular.
  size_t omit = n;
  for (size_t i = 0; i < n; ++i)
    if (first_row[i] == 1 || first_row[i] == -1) omit = i;
  if (omit != n) {
    IntMatrix m(n, n);
    m.set_row(0, first_row);
    size_t r = 1;
    for (size_t i = 0; i < n; ++i) {
      if (i == omit) continue;
      m.at(r, i) = 1;
      ++r;
    }
    assert(m.is_unimodular());
    return m;
  }

  auto m = gcd_completion(first_row);
  assert(!m || m->is_unimodular());
  return m;
}

}  // namespace ps
