#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ps {

/// Join elements with a separator: join({"a","b"}, ", ") == "a, b".
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Split on a single-character separator; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// ASCII case-insensitive equality (PS keywords are case-insensitive,
/// following its Pascal heritage).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Lower-case an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Repeat `unit` `n` times.
[[nodiscard]] std::string repeat(std::string_view unit, size_t n);

}  // namespace ps
