#include "support/dot_writer.hpp"

#include <sstream>

namespace ps {

DotWriter::DotWriter(std::string graph_name) : name_(std::move(graph_name)) {}

std::string DotWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

void DotWriter::add_node(const std::string& id, const std::string& label,
                         const std::string& shape) {
  std::ostringstream os;
  os << "  \"" << escape(id) << "\" [label=\"" << escape(label)
     << "\", shape=" << shape << "];";
  lines_.push_back(os.str());
}

void DotWriter::add_edge(const std::string& from, const std::string& to,
                         const std::string& label, const std::string& style) {
  std::ostringstream os;
  os << "  \"" << escape(from) << "\" -> \"" << escape(to) << "\"";
  bool open = false;
  auto attr = [&](const std::string& key, const std::string& value) {
    if (value.empty()) return;
    os << (open ? ", " : " [");
    open = true;
    os << key << "=\"" << escape(value) << "\"";
  };
  attr("label", label);
  attr("style", style);
  if (open) os << "]";
  os << ";";
  lines_.push_back(os.str());
}

std::string DotWriter::render() const {
  std::ostringstream os;
  os << "digraph " << name_ << " {\n";
  for (const auto& line : lines_) os << line << '\n';
  os << "}\n";
  return os.str();
}

}  // namespace ps
