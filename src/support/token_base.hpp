#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.hpp"

namespace ps {

/// Shared token record for the project's lexers (the PS frontend and the
/// TeX-flavoured EQN frontend declare different kind enums but identical
/// payloads). Kept an aggregate so lexers can brace-initialise:
/// `Token{kind, text, 0, 0, loc}`.
template <typename Kind>
struct BasicToken {
  Kind kind{};            // value-init: both enums place EndOfFile at 0
  std::string text;       // identifier / command spelling, literal text
  int64_t int_value = 0;  // integer literals
  double real_value = 0;  // real literals
  SourceLoc loc;

  [[nodiscard]] bool is(Kind k) const { return kind == k; }
};

}  // namespace ps
