#pragma once

#include <optional>
#include <string_view>

#include "eqn/eqn_ast.hpp"
#include "eqn/eqn_lexer.hpp"
#include "support/diagnostics.hpp"

namespace ps::eqn {

/// Recursive-descent parser for the EQN equation language:
///
///   file    := 'module' IDENT ';' item*
///   item    := param | result | clause
///   param   := 'param' IDENT ':' type ';'
///   type    := 'int' | 'real' | 'real' '[' range (',' range)* ']'
///   result  := 'result' IDENT '=' ref ';'
///   clause  := ref '=' arith (('if' bool) | 'otherwise')?
///              ('for' binding (',' binding)*)? ';'
///   binding := IDENT 'in' arith '..' arith
///   ref     := IDENT ('^' group)? ('_' group)?
///   group   := '{' arith (',' arith)* '}' | INT | IDENT
///
/// Expressions come in two precedence families: `arith` (+, -, *, /,
/// div, mod, \frac, \cdot, \times, unary minus, intrinsic calls) and
/// `bool` (comparisons =, <>, <=, <, >=, > / \ne, \le, \ge over arith,
/// combined with and/or/not / \land, \lor, \lnot). Right-hand sides are
/// arithmetic; guards are boolean -- so '=' is unambiguous.
class EqnParser {
 public:
  EqnParser(std::string_view source, DiagnosticEngine& diags);

  /// Parse one module; nullopt (with diagnostics) on failure.
  std::optional<EqnModule> parse_module();

 private:
  const EqnToken& peek();
  EqnToken take();
  bool at(EqnTokKind kind);
  bool accept(EqnTokKind kind);
  bool expect(EqnTokKind kind, std::string_view context);
  void sync_to_semicolon();

  /// Translate a relational/logical/arithmetic TeX command to its
  /// operator token kind; nullopt for non-operator commands.
  static std::optional<EqnTokKind> command_operator(std::string_view name);

  std::optional<EqnParam> parse_param();
  std::optional<EqnResult> parse_result();
  std::optional<EqnClause> parse_clause();
  std::optional<EqnRef> parse_ref();
  bool parse_group(std::vector<ExprPtr>& out);
  std::optional<EqnBinding> parse_binding();

  ExprPtr parse_bool();
  ExprPtr parse_bool_and();
  ExprPtr parse_bool_not();
  ExprPtr parse_comparison();
  ExprPtr parse_arith();
  ExprPtr parse_term();
  ExprPtr parse_unary();
  ExprPtr parse_primary();

  EqnLexer lexer_;
  DiagnosticEngine& diags_;
  EqnToken lookahead_;
  bool has_lookahead_ = false;
};

}  // namespace ps::eqn
