#include "eqn/translate.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "eqn/eqn_parser.hpp"

namespace ps::eqn {

namespace {

/// One dimension of an equation array, as inferred from the clauses.
struct DimInfo {
  std::string var;        // canonical binding variable ("" when never bound)
  const Expr* lo = nullptr;  // binding range (borrowed from a clause)
  const Expr* hi = nullptr;
  /// Literal fixed subscripts seen at this position (A^{1} -> 1); they
  /// may widen a literal binding bound (k in 2..maxK plus the fixed 1
  /// gives the declared range 1..maxK, as in the paper's Figure 1).
  std::vector<int64_t> fixed_literals;
};

struct ArrayInfo {
  std::vector<DimInfo> dims;
  SourceLoc loc;
};

/// A group of clauses sharing one left-hand-side shape = one PS
/// equation after guard chaining.
struct ClauseGroup {
  std::string array;
  std::vector<const EqnClause*> clauses;
};

bool is_binding_var(const EqnClause& clause, const Expr& e,
                    std::string* var_out) {
  if (e.kind != ExprKind::Name) return false;
  const auto& name = static_cast<const NameExpr&>(e).name;
  for (const EqnBinding& b : clause.bindings) {
    if (b.var == name) {
      *var_out = name;
      return true;
    }
  }
  return false;
}

/// All scripts of a reference in PS order: superscripts first.
std::vector<const Expr*> script_list(const EqnRef& ref) {
  std::vector<const Expr*> out;
  for (const auto& e : ref.supers) out.push_back(e.get());
  for (const auto& e : ref.subs) out.push_back(e.get());
  return out;
}

/// Shape key of a clause LHS: per position, the binding variable name or
/// the rendered fixed expression. Clauses with equal keys merge.
std::string shape_key(const EqnClause& clause) {
  std::string key = clause.lhs.name;
  for (const Expr* e : script_list(clause.lhs)) {
    std::string var;
    if (is_binding_var(clause, *e, &var))
      key += "|v:" + var;
    else
      key += "|f:" + to_string(*e);
  }
  return key;
}

TypeExprPtr subrange_type(const Expr& lo, const Expr& hi, SourceLoc loc) {
  auto node = std::make_unique<TypeExprNode>();
  node->kind = TypeExprKind::Subrange;
  node->loc = loc;
  node->lo = lo.clone();
  node->hi = hi.clone();
  return node;
}

TypeExprPtr named_type(const std::string& name, SourceLoc loc) {
  auto node = std::make_unique<TypeExprNode>();
  node->kind = TypeExprKind::Named;
  node->name = name;
  node->loc = loc;
  return node;
}

TypeExprPtr real_type(SourceLoc loc) {
  auto node = std::make_unique<TypeExprNode>();
  node->kind = TypeExprKind::Real;
  node->loc = loc;
  return node;
}

class Translator {
 public:
  Translator(const EqnModule& module, DiagnosticEngine& diags)
      : in_(module), diags_(diags) {}

  std::optional<ModuleAst> run() {
    collect_groups();
    if (!infer_arrays()) return std::nullopt;
    if (!check_bindings()) return std::nullopt;

    ModuleAst out;
    out.name = in_.name;
    out.loc = in_.loc;
    emit_type_decls(out);
    emit_params(out);
    if (!emit_locals(out)) return std::nullopt;
    if (!emit_group_equations(out)) return std::nullopt;
    if (!emit_results(out)) return std::nullopt;
    if (diags_.has_errors()) return std::nullopt;
    return out;
  }

 private:
  // -- analysis ---------------------------------------------------------

  void collect_groups() {
    for (const EqnClause& clause : in_.clauses) {
      std::string key = shape_key(clause);
      auto it = group_index_.find(key);
      if (it == group_index_.end()) {
        group_index_.emplace(key, groups_.size());
        groups_.push_back(ClauseGroup{clause.lhs.name, {&clause}});
      } else {
        groups_[it->second].clauses.push_back(&clause);
      }
    }
  }

  bool infer_arrays() {
    bool ok = true;
    for (const ClauseGroup& group : groups_) {
      const EqnClause& first = *group.clauses.front();
      auto [it, inserted] = arrays_.try_emplace(group.array);
      ArrayInfo& info = it->second;
      if (inserted) {
        info.dims.resize(first.lhs.rank());
        info.loc = first.lhs.loc;
      } else if (info.dims.size() != first.lhs.rank()) {
        diags_.error(first.lhs.loc,
                     "'" + group.array + "' is used with " +
                         std::to_string(first.lhs.rank()) + " scripts here but " +
                         std::to_string(info.dims.size()) + " elsewhere");
        ok = false;
        continue;
      }
      auto scripts = script_list(first.lhs);
      for (size_t d = 0; d < scripts.size(); ++d) {
        std::string var;
        if (is_binding_var(first, *scripts[d], &var)) {
          const EqnBinding* binding = find_binding(first, var);
          DimInfo& dim = info.dims[d];
          if (dim.lo == nullptr) {
            dim.var = var;
            dim.lo = binding->lo.get();
            dim.hi = binding->hi.get();
          } else if (!expr_equal(*dim.lo, *binding->lo) ||
                     !expr_equal(*dim.hi, *binding->hi)) {
            diags_.error(binding->loc,
                         "dimension " + std::to_string(d + 1) + " of '" +
                             group.array + "' is bound to " +
                             to_string(*binding->lo) + ".." +
                             to_string(*binding->hi) + " here but " +
                             to_string(*dim.lo) + ".." + to_string(*dim.hi) +
                             " elsewhere");
            ok = false;
          }
        } else if (scripts[d]->kind == ExprKind::IntLit) {
          info.dims[d].fixed_literals.push_back(
              static_cast<const IntLitExpr&>(*scripts[d]).value);
        }
        // Symbolic fixed subscripts (A^{maxK}) constrain nothing: the
        // range must come from some binding or literal.
      }
    }
    return ok;
  }

  bool check_bindings() {
    bool ok = true;
    for (const ClauseGroup& group : groups_) {
      const EqnClause& first = *group.clauses.front();
      // Every binding var must appear on the LHS (PS loops come from
      // the LHS index variables).
      for (const EqnBinding& b : first.bindings) {
        bool used = false;
        for (const Expr* e : script_list(first.lhs)) {
          std::string var;
          if (is_binding_var(first, *e, &var) && var == b.var) used = true;
        }
        if (!used) {
          diags_.error(b.loc, "index '" + b.var +
                                  "' is bound but does not appear on the "
                                  "left-hand side");
          ok = false;
        }
      }
      // All clauses of a group agree on their bindings.
      for (const EqnClause* clause : group.clauses) {
        if (clause == &first) continue;
        if (!same_bindings(first, *clause)) {
          diags_.error(clause->loc,
                       "clauses for this left-hand side have different "
                       "index bindings; split the domains with guards "
                       "instead");
          ok = false;
        }
      }
      // Exactly one unguarded/otherwise clause, and it comes last in
      // the chain.
      size_t fallbacks = 0;
      for (const EqnClause* clause : group.clauses)
        if (clause->guard == nullptr) ++fallbacks;
      if (fallbacks == 0) {
        diags_.error(first.loc, "no 'otherwise' clause for '" + group.array +
                                    "': the case split is incomplete");
        ok = false;
      } else if (fallbacks > 1) {
        diags_.error(first.loc, "more than one unguarded clause for '" +
                                    group.array + "'");
        ok = false;
      }
    }
    // Binding variables bound to different ranges anywhere in the file
    // would need two subrange types of the same name.
    for (const EqnClause& clause : in_.clauses) {
      for (const EqnBinding& b : clause.bindings) {
        auto it = binding_ranges_.find(b.var);
        if (it == binding_ranges_.end()) {
          binding_ranges_.emplace(
              b.var, std::make_pair(b.lo.get(), b.hi.get()));
        } else if (!expr_equal(*it->second.first, *b.lo) ||
                   !expr_equal(*it->second.second, *b.hi)) {
          diags_.error(b.loc, "index '" + b.var +
                                  "' is bound to two different ranges; "
                                  "rename one of the indices");
          ok = false;
        }
      }
    }
    return ok;
  }

  static const EqnBinding* find_binding(const EqnClause& clause,
                                        const std::string& var) {
    for (const EqnBinding& b : clause.bindings)
      if (b.var == var) return &b;
    return nullptr;
  }

  static bool same_bindings(const EqnClause& a, const EqnClause& b) {
    if (a.bindings.size() != b.bindings.size()) return false;
    for (const EqnBinding& ba : a.bindings) {
      const EqnBinding* bb = find_binding(b, ba.var);
      if (bb == nullptr || !expr_equal(*ba.lo, *bb->lo) ||
          !expr_equal(*ba.hi, *bb->hi))
        return false;
    }
    return true;
  }

  /// The declared range of one array dimension: the binding range,
  /// widened by literal fixed subscripts when both ends are literals.
  bool dim_range(const std::string& array, const DimInfo& dim, ExprPtr* lo,
                 ExprPtr* hi) {
    if (dim.lo == nullptr) {
      if (dim.fixed_literals.empty()) {
        diags_.error(arrays_.at(array).loc,
                     "cannot infer a range for a dimension of '" + array +
                         "': it is never bound by a 'for'");
        return false;
      }
      auto [mn, mx] = std::minmax_element(dim.fixed_literals.begin(),
                                          dim.fixed_literals.end());
      *lo = std::make_unique<IntLitExpr>(*mn);
      *hi = std::make_unique<IntLitExpr>(*mx);
      return true;
    }
    *lo = dim.lo->clone();
    *hi = dim.hi->clone();
    if (!dim.fixed_literals.empty()) {
      auto [mn, mx] = std::minmax_element(dim.fixed_literals.begin(),
                                          dim.fixed_literals.end());
      if ((*lo)->kind == ExprKind::IntLit &&
          *mn < static_cast<IntLitExpr&>(**lo).value)
        *lo = std::make_unique<IntLitExpr>(*mn);
      if ((*hi)->kind == ExprKind::IntLit &&
          *mx > static_cast<IntLitExpr&>(**hi).value)
        *hi = std::make_unique<IntLitExpr>(*mx);
    }
    return true;
  }

  /// True when the binding range of `dim.var` equals the declared
  /// dimension range, so the array declaration can name the subrange.
  bool dim_matches_binding(const DimInfo& dim, const Expr& lo,
                           const Expr& hi) const {
    return dim.lo != nullptr && expr_equal(*dim.lo, lo) &&
           expr_equal(*dim.hi, hi);
  }

  // -- emission ---------------------------------------------------------

  void emit_type_decls(ModuleAst& out) {
    // One subrange type per binding variable; variables with equal
    // ranges share a declaration (type i, j = 0 .. M+1).
    std::vector<std::string> order;
    for (const EqnClause& clause : in_.clauses)
      for (const EqnBinding& b : clause.bindings)
        if (std::find(order.begin(), order.end(), b.var) == order.end())
          order.push_back(b.var);

    std::set<std::string> done;
    for (size_t i = 0; i < order.size(); ++i) {
      if (done.count(order[i])) continue;
      const auto& [lo_i, hi_i] = binding_ranges_.at(order[i]);
      TypeDeclAst decl;
      decl.names.push_back(order[i]);
      done.insert(order[i]);
      for (size_t j = i + 1; j < order.size(); ++j) {
        if (done.count(order[j])) continue;
        const auto& [lo_j, hi_j] = binding_ranges_.at(order[j]);
        if (expr_equal(*lo_i, *lo_j) && expr_equal(*hi_i, *hi_j)) {
          decl.names.push_back(order[j]);
          done.insert(order[j]);
        }
      }
      decl.type = subrange_type(*lo_i, *hi_i, in_.loc);
      out.type_decls.push_back(std::move(decl));
    }
  }

  void emit_params(ModuleAst& out) {
    for (const EqnParam& p : in_.params) {
      VarDeclAst decl;
      decl.names.push_back(p.name);
      decl.loc = p.loc;
      if (p.dims.empty()) {
        decl.type = std::make_unique<TypeExprNode>();
        decl.type->kind = p.is_int ? TypeExprKind::Int : TypeExprKind::Real;
        decl.type->loc = p.loc;
      } else {
        auto arr = std::make_unique<TypeExprNode>();
        arr->kind = TypeExprKind::Array;
        arr->loc = p.loc;
        std::set<std::string> used;
        for (const auto& [lo, hi] : p.dims)
          arr->dims.push_back(dim_type_expr(*lo, *hi, p.loc, &used));
        arr->elem = real_type(p.loc);
        decl.type = std::move(arr);
      }
      out.params.push_back(std::move(decl));
      param_names_.insert(p.name);
    }
  }

  /// Binding variables in order of first appearance (the order the
  /// reader of the equation file expects in declarations).
  std::vector<std::string> binding_order() const {
    std::vector<std::string> order;
    for (const EqnClause& clause : in_.clauses)
      for (const EqnBinding& b : clause.bindings)
        if (std::find(order.begin(), order.end(), b.var) == order.end())
          order.push_back(b.var);
    return order;
  }

  /// Named subrange when a binding variable has exactly this range,
  /// otherwise an anonymous subrange. With several equal-range names
  /// (i, j = 0..M+1), successive dimensions of one array prefer names
  /// not used yet, so InitialA prints as array [i, j] rather than
  /// array [i, i].
  TypeExprPtr dim_type_expr(const Expr& lo, const Expr& hi, SourceLoc loc,
                            std::set<std::string>* used) {
    std::string fallback;
    for (const std::string& var : binding_order()) {
      const auto& range = binding_ranges_.at(var);
      if (!expr_equal(*range.first, lo) || !expr_equal(*range.second, hi))
        continue;
      if (used == nullptr || used->insert(var).second)
        return named_type(var, loc);
      if (fallback.empty()) fallback = var;
    }
    if (!fallback.empty()) return named_type(fallback, loc);
    return subrange_type(lo, hi, loc);
  }

  bool emit_locals(ModuleAst& out) {
    std::set<std::string> result_names;
    for (const EqnResult& r : in_.results) result_names.insert(r.name);

    for (auto& [name, info] : arrays_) {
      if (param_names_.count(name)) {
        diags_.error(info.loc,
                     "parameter '" + name + "' cannot be defined by an "
                                            "equation");
        return false;
      }
      if (result_names.count(name)) {
        diags_.error(info.loc,
                     "'" + name + "' is declared as a result; results are "
                                  "slices of equation arrays");
        return false;
      }
      VarDeclAst decl;
      decl.names.push_back(name);
      decl.loc = info.loc;
      auto arr = std::make_unique<TypeExprNode>();
      arr->kind = TypeExprKind::Array;
      arr->loc = info.loc;
      for (const DimInfo& dim : info.dims) {
        ExprPtr lo;
        ExprPtr hi;
        if (!dim_range(name, dim, &lo, &hi)) return false;
        if (dim_matches_binding(dim, *lo, *hi))
          arr->dims.push_back(named_type(dim.var, info.loc));
        else
          arr->dims.push_back(subrange_type(*lo, *hi, info.loc));
      }
      arr->elem = real_type(info.loc);
      decl.type = std::move(arr);
      out.locals.push_back(std::move(decl));
    }
    return true;
  }

  bool emit_group_equations(ModuleAst& out) {
    for (const ClauseGroup& group : groups_) {
      const EqnClause& first = *group.clauses.front();
      EquationAst eq;
      eq.lhs_name = group.array;
      eq.loc = first.loc;
      for (const Expr* e : script_list(first.lhs)) {
        std::string var;
        if (is_binding_var(first, *e, &var))
          eq.lhs_subs.push_back(std::make_unique<NameExpr>(var, e->loc));
        else
          eq.lhs_subs.push_back(e->clone());
      }

      // Chain the guards: guarded clauses in order, fallback last.
      const EqnClause* fallback = nullptr;
      std::vector<const EqnClause*> guarded;
      for (const EqnClause* clause : group.clauses) {
        if (clause->guard == nullptr)
          fallback = clause;
        else
          guarded.push_back(clause);
      }
      ExprPtr rhs = fallback->rhs->clone();
      for (size_t i = guarded.size(); i-- > 0;) {
        rhs = std::make_unique<IfExpr>(guarded[i]->guard->clone(),
                                       guarded[i]->rhs->clone(),
                                       std::move(rhs), guarded[i]->loc);
      }
      eq.rhs = std::move(rhs);
      out.equations.push_back(std::move(eq));
    }
    return true;
  }

  bool emit_results(ModuleAst& out) {
    for (const EqnResult& r : in_.results) {
      auto it = arrays_.find(r.ref.name);
      if (it == arrays_.end()) {
        diags_.error(r.loc, "result '" + r.name + "' refers to '" +
                                r.ref.name +
                                "', which no equation defines");
        return false;
      }
      const ArrayInfo& info = it->second;
      size_t fixed = r.ref.rank();
      if (fixed > info.dims.size()) {
        diags_.error(r.loc, "result '" + r.name + "' applies " +
                                std::to_string(fixed) + " scripts to the " +
                                std::to_string(info.dims.size()) +
                                "-dimensional '" + r.ref.name + "'");
        return false;
      }

      // Output declaration over the remaining dimensions.
      VarDeclAst decl;
      decl.names.push_back(r.name);
      decl.loc = r.loc;
      std::vector<std::string> loop_vars;
      if (fixed == info.dims.size()) {
        decl.type = real_type(r.loc);
      } else {
        auto arr = std::make_unique<TypeExprNode>();
        arr->kind = TypeExprKind::Array;
        arr->loc = r.loc;
        for (size_t d = fixed; d < info.dims.size(); ++d) {
          const DimInfo& dim = info.dims[d];
          ExprPtr lo;
          ExprPtr hi;
          if (!dim_range(r.ref.name, dim, &lo, &hi)) return false;
          if (dim.var.empty() || !dim_matches_binding(dim, *lo, *hi)) {
            diags_.error(r.loc,
                         "result '" + r.name + "' keeps dimension " +
                             std::to_string(d + 1) + " of '" + r.ref.name +
                             "', whose range does not match an index "
                             "binding");
            return false;
          }
          arr->dims.push_back(named_type(dim.var, r.loc));
          loop_vars.push_back(dim.var);
        }
        arr->elem = real_type(r.loc);
        decl.type = std::move(arr);
      }
      out.results.push_back(std::move(decl));

      // The copy equation newA[i, j] = A[maxK, i, j].
      EquationAst eq;
      eq.lhs_name = r.name;
      eq.loc = r.loc;
      std::vector<ExprPtr> subs;
      for (const Expr* e : script_list(r.ref)) subs.push_back(e->clone());
      for (const std::string& var : loop_vars) {
        eq.lhs_subs.push_back(std::make_unique<NameExpr>(var, r.loc));
        subs.push_back(std::make_unique<NameExpr>(var, r.loc));
      }
      eq.rhs = std::make_unique<IndexExpr>(
          std::make_unique<NameExpr>(r.ref.name, r.loc), std::move(subs),
          r.loc);
      out.equations.push_back(std::move(eq));
    }
    return true;
  }

  const EqnModule& in_;
  DiagnosticEngine& diags_;

  std::vector<ClauseGroup> groups_;
  std::map<std::string, size_t> group_index_;
  std::map<std::string, ArrayInfo> arrays_;
  /// binding var -> (lo, hi), borrowed from the clauses.
  std::map<std::string, std::pair<const Expr*, const Expr*>> binding_ranges_;
  std::set<std::string> param_names_;
};

}  // namespace

std::optional<ModuleAst> translate_equations(const EqnModule& module,
                                             DiagnosticEngine& diags) {
  return Translator(module, diags).run();
}

std::optional<ModuleAst> equations_to_ps(std::string_view eqn_source,
                                         DiagnosticEngine& diags) {
  EqnParser parser(eqn_source, diags);
  auto module = parser.parse_module();
  if (!module) return std::nullopt;
  return translate_equations(*module, diags);
}

}  // namespace ps::eqn
