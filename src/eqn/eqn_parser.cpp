#include "eqn/eqn_parser.hpp"

#include <utility>

namespace ps::eqn {

EqnParser::EqnParser(std::string_view source, DiagnosticEngine& diags)
    : lexer_(source, diags), diags_(diags) {}

const EqnToken& EqnParser::peek() {
  if (!has_lookahead_) {
    lookahead_ = lexer_.next();
    has_lookahead_ = true;
  }
  return lookahead_;
}

EqnToken EqnParser::take() {
  peek();
  has_lookahead_ = false;
  return std::move(lookahead_);
}

bool EqnParser::at(EqnTokKind kind) { return peek().kind == kind; }

bool EqnParser::accept(EqnTokKind kind) {
  if (!at(kind)) return false;
  take();
  return true;
}

bool EqnParser::expect(EqnTokKind kind, std::string_view context) {
  if (accept(kind)) return true;
  diags_.error(peek().loc, "expected " + std::string(eqn_tok_name(kind)) +
                               " " + std::string(context) + ", found " +
                               std::string(eqn_tok_name(peek().kind)));
  return false;
}

void EqnParser::sync_to_semicolon() {
  while (!at(EqnTokKind::EndOfFile) && !accept(EqnTokKind::Semicolon)) take();
}

std::optional<EqnTokKind> EqnParser::command_operator(std::string_view name) {
  if (name == "le" || name == "leq") return EqnTokKind::LessEq;
  if (name == "ge" || name == "geq") return EqnTokKind::GreaterEq;
  if (name == "ne" || name == "neq") return EqnTokKind::NotEq;
  if (name == "lt") return EqnTokKind::Less;
  if (name == "gt") return EqnTokKind::Greater;
  if (name == "lor" || name == "vee") return EqnTokKind::KwOr;
  if (name == "land" || name == "wedge") return EqnTokKind::KwAnd;
  if (name == "lnot" || name == "neg") return EqnTokKind::KwNot;
  if (name == "cdot" || name == "times") return EqnTokKind::Star;
  return std::nullopt;
}

std::optional<EqnModule> EqnParser::parse_module() {
  EqnModule module;
  module.loc = peek().loc;
  if (!expect(EqnTokKind::KwModule, "at the start of an equation file"))
    return std::nullopt;
  if (!at(EqnTokKind::Identifier)) {
    diags_.error(peek().loc, "expected module name");
    return std::nullopt;
  }
  module.name = take().text;
  expect(EqnTokKind::Semicolon, "after the module name");

  while (!at(EqnTokKind::EndOfFile)) {
    if (at(EqnTokKind::KwParam)) {
      if (auto p = parse_param())
        module.params.push_back(std::move(*p));
      else
        sync_to_semicolon();
    } else if (at(EqnTokKind::KwResult)) {
      if (auto r = parse_result())
        module.results.push_back(std::move(*r));
      else
        sync_to_semicolon();
    } else {
      if (auto c = parse_clause())
        module.clauses.push_back(std::move(*c));
      else
        sync_to_semicolon();
    }
  }
  if (diags_.has_errors()) return std::nullopt;
  if (module.results.empty())
    diags_.error(module.loc, "module '" + module.name + "' has no result");
  if (module.clauses.empty())
    diags_.error(module.loc, "module '" + module.name + "' has no equations");
  if (diags_.has_errors()) return std::nullopt;
  return module;
}

std::optional<EqnParam> EqnParser::parse_param() {
  EqnParam param;
  param.loc = peek().loc;
  take();  // 'param'
  if (!at(EqnTokKind::Identifier)) {
    diags_.error(peek().loc, "expected parameter name");
    return std::nullopt;
  }
  param.name = take().text;
  if (!expect(EqnTokKind::Colon, "after the parameter name"))
    return std::nullopt;

  if (accept(EqnTokKind::KwInt)) {
    param.is_int = true;
  } else if (accept(EqnTokKind::KwReal)) {
    param.is_int = false;
    if (accept(EqnTokKind::LBracket)) {
      do {
        ExprPtr lo = parse_arith();
        if (!expect(EqnTokKind::DotDot, "in an array bound")) return std::nullopt;
        ExprPtr hi = parse_arith();
        if (!lo || !hi) return std::nullopt;
        param.dims.emplace_back(std::move(lo), std::move(hi));
      } while (accept(EqnTokKind::Comma));
      if (!expect(EqnTokKind::RBracket, "after the array bounds"))
        return std::nullopt;
    }
  } else {
    diags_.error(peek().loc, "expected 'int' or 'real' parameter type");
    return std::nullopt;
  }
  if (!expect(EqnTokKind::Semicolon, "after the parameter declaration"))
    return std::nullopt;
  return param;
}

std::optional<EqnResult> EqnParser::parse_result() {
  EqnResult result;
  result.loc = peek().loc;
  take();  // 'result'
  if (!at(EqnTokKind::Identifier)) {
    diags_.error(peek().loc, "expected result name");
    return std::nullopt;
  }
  result.name = take().text;
  if (!expect(EqnTokKind::Equal, "after the result name")) return std::nullopt;
  auto ref = parse_ref();
  if (!ref) return std::nullopt;
  result.ref = std::move(*ref);
  if (!expect(EqnTokKind::Semicolon, "after the result definition"))
    return std::nullopt;
  return result;
}

std::optional<EqnClause> EqnParser::parse_clause() {
  EqnClause clause;
  clause.loc = peek().loc;
  auto lhs = parse_ref();
  if (!lhs) return std::nullopt;
  clause.lhs = std::move(*lhs);
  if (!expect(EqnTokKind::Equal, "after the equation left-hand side"))
    return std::nullopt;
  clause.rhs = parse_arith();
  if (!clause.rhs) return std::nullopt;

  if (accept(EqnTokKind::KwIf)) {
    clause.guard = parse_bool();
    if (!clause.guard) return std::nullopt;
  } else if (accept(EqnTokKind::KwOtherwise)) {
    clause.otherwise = true;
  }

  if (accept(EqnTokKind::KwFor)) {
    do {
      auto binding = parse_binding();
      if (!binding) return std::nullopt;
      clause.bindings.push_back(std::move(*binding));
    } while (accept(EqnTokKind::Comma));
  }
  if (!expect(EqnTokKind::Semicolon, "after the equation")) return std::nullopt;
  return clause;
}

std::optional<EqnRef> EqnParser::parse_ref() {
  if (!at(EqnTokKind::Identifier)) {
    diags_.error(peek().loc, "expected a name");
    return std::nullopt;
  }
  EqnRef ref;
  EqnToken name = take();
  ref.name = name.text;
  ref.loc = name.loc;
  if (accept(EqnTokKind::Caret)) {
    if (!parse_group(ref.supers)) return std::nullopt;
  }
  if (accept(EqnTokKind::Underscore)) {
    if (!parse_group(ref.subs)) return std::nullopt;
  }
  return ref;
}

bool EqnParser::parse_group(std::vector<ExprPtr>& out) {
  if (accept(EqnTokKind::LBrace)) {
    do {
      ExprPtr e = parse_arith();
      if (!e) return false;
      out.push_back(std::move(e));
    } while (accept(EqnTokKind::Comma));
    return expect(EqnTokKind::RBrace, "after the script group");
  }
  // Short form: a single digit-run or identifier, as in A^2 or A_i.
  if (at(EqnTokKind::IntLit)) {
    EqnToken t = take();
    out.push_back(std::make_unique<IntLitExpr>(t.int_value, t.loc));
    return true;
  }
  if (at(EqnTokKind::Identifier)) {
    EqnToken t = take();
    out.push_back(std::make_unique<NameExpr>(t.text, t.loc));
    return true;
  }
  diags_.error(peek().loc, "expected '{', a number or a name after ^/_");
  return false;
}

std::optional<EqnBinding> EqnParser::parse_binding() {
  if (!at(EqnTokKind::Identifier)) {
    diags_.error(peek().loc, "expected an index variable");
    return std::nullopt;
  }
  EqnBinding binding;
  EqnToken name = take();
  binding.var = name.text;
  binding.loc = name.loc;
  if (!expect(EqnTokKind::KwIn, "in an index binding")) return std::nullopt;
  binding.lo = parse_arith();
  if (!binding.lo) return std::nullopt;
  if (!expect(EqnTokKind::DotDot, "in an index range")) return std::nullopt;
  binding.hi = parse_arith();
  if (!binding.hi) return std::nullopt;
  return binding;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr EqnParser::parse_bool() {
  ExprPtr lhs = parse_bool_and();
  if (!lhs) return nullptr;
  while (true) {
    bool is_or = at(EqnTokKind::KwOr) ||
                 (at(EqnTokKind::Command) &&
                  command_operator(peek().text) == EqnTokKind::KwOr);
    if (!is_or) return lhs;
    SourceLoc loc = take().loc;
    ExprPtr rhs = parse_bool_and();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(lhs),
                                       std::move(rhs), loc);
  }
}

ExprPtr EqnParser::parse_bool_and() {
  ExprPtr lhs = parse_bool_not();
  if (!lhs) return nullptr;
  while (true) {
    bool is_and = at(EqnTokKind::KwAnd) ||
                  (at(EqnTokKind::Command) &&
                   command_operator(peek().text) == EqnTokKind::KwAnd);
    if (!is_and) return lhs;
    SourceLoc loc = take().loc;
    ExprPtr rhs = parse_bool_not();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(lhs),
                                       std::move(rhs), loc);
  }
}

ExprPtr EqnParser::parse_bool_not() {
  bool is_not = at(EqnTokKind::KwNot) ||
                (at(EqnTokKind::Command) &&
                 command_operator(peek().text) == EqnTokKind::KwNot);
  if (is_not) {
    SourceLoc loc = take().loc;
    ExprPtr operand = parse_bool_not();
    if (!operand) return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(operand), loc);
  }
  if (accept(EqnTokKind::LParen)) {
    // Parenthesised boolean subexpression.
    ExprPtr inner = parse_bool();
    if (!inner) return nullptr;
    if (!expect(EqnTokKind::RParen, "after the condition")) return nullptr;
    return inner;
  }
  return parse_comparison();
}

ExprPtr EqnParser::parse_comparison() {
  ExprPtr lhs = parse_arith();
  if (!lhs) return nullptr;

  EqnTokKind op_kind = peek().kind;
  if (op_kind == EqnTokKind::Command) {
    auto mapped = command_operator(peek().text);
    if (!mapped) {
      diags_.error(peek().loc, "expected a comparison operator");
      return nullptr;
    }
    op_kind = *mapped;
  }
  BinaryOp op;
  switch (op_kind) {
    case EqnTokKind::Equal: op = BinaryOp::Eq; break;
    case EqnTokKind::NotEq: op = BinaryOp::Ne; break;
    case EqnTokKind::Less: op = BinaryOp::Lt; break;
    case EqnTokKind::LessEq: op = BinaryOp::Le; break;
    case EqnTokKind::Greater: op = BinaryOp::Gt; break;
    case EqnTokKind::GreaterEq: op = BinaryOp::Ge; break;
    default:
      diags_.error(peek().loc, "expected a comparison operator");
      return nullptr;
  }
  SourceLoc loc = take().loc;
  ExprPtr rhs = parse_arith();
  if (!rhs) return nullptr;
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
}

ExprPtr EqnParser::parse_arith() {
  ExprPtr lhs = parse_term();
  if (!lhs) return nullptr;
  while (at(EqnTokKind::Plus) || at(EqnTokKind::Minus)) {
    EqnToken op = take();
    ExprPtr rhs = parse_term();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(
        op.kind == EqnTokKind::Plus ? BinaryOp::Add : BinaryOp::Sub,
        std::move(lhs), std::move(rhs), op.loc);
  }
  return lhs;
}

ExprPtr EqnParser::parse_term() {
  ExprPtr lhs = parse_unary();
  if (!lhs) return nullptr;
  while (true) {
    BinaryOp op;
    if (at(EqnTokKind::Star)) {
      op = BinaryOp::Mul;
    } else if (at(EqnTokKind::Slash)) {
      op = BinaryOp::Div;
    } else if (at(EqnTokKind::KwDiv)) {
      op = BinaryOp::IntDiv;
    } else if (at(EqnTokKind::KwMod)) {
      op = BinaryOp::Mod;
    } else if (at(EqnTokKind::Command) &&
               command_operator(peek().text) == EqnTokKind::Star) {
      op = BinaryOp::Mul;
    } else {
      return lhs;
    }
    SourceLoc loc = take().loc;
    ExprPtr rhs = parse_unary();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr EqnParser::parse_unary() {
  if (at(EqnTokKind::Minus)) {
    SourceLoc loc = take().loc;
    ExprPtr operand = parse_unary();
    if (!operand) return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(operand), loc);
  }
  return parse_primary();
}

ExprPtr EqnParser::parse_primary() {
  if (at(EqnTokKind::IntLit)) {
    EqnToken t = take();
    return std::make_unique<IntLitExpr>(t.int_value, t.loc);
  }
  if (at(EqnTokKind::RealLit)) {
    EqnToken t = take();
    return std::make_unique<RealLitExpr>(t.real_value, t.loc);
  }
  if (accept(EqnTokKind::LParen)) {
    ExprPtr inner = parse_arith();
    if (!inner) return nullptr;
    if (!expect(EqnTokKind::RParen, "after the expression")) return nullptr;
    return inner;
  }
  if (at(EqnTokKind::Command)) {
    EqnToken cmd = take();
    if (cmd.text == "frac") {
      // \frac{numerator}{denominator}
      if (!expect(EqnTokKind::LBrace, "after \\frac")) return nullptr;
      ExprPtr numer = parse_arith();
      if (!numer) return nullptr;
      if (!expect(EqnTokKind::RBrace, "after the numerator")) return nullptr;
      if (!expect(EqnTokKind::LBrace, "before the denominator"))
        return nullptr;
      ExprPtr denom = parse_arith();
      if (!denom) return nullptr;
      if (!expect(EqnTokKind::RBrace, "after the denominator")) return nullptr;
      return std::make_unique<BinaryExpr>(BinaryOp::Div, std::move(numer),
                                          std::move(denom), cmd.loc);
    }
    if (cmd.text == "sqrt") {
      if (!expect(EqnTokKind::LBrace, "after \\sqrt")) return nullptr;
      ExprPtr arg = parse_arith();
      if (!arg) return nullptr;
      if (!expect(EqnTokKind::RBrace, "after the radicand")) return nullptr;
      std::vector<ExprPtr> args;
      args.push_back(std::move(arg));
      return std::make_unique<CallExpr>("sqrt", std::move(args), cmd.loc);
    }
    diags_.error(cmd.loc, "unknown TeX command '\\" + cmd.text + "'");
    return nullptr;
  }
  if (at(EqnTokKind::Identifier)) {
    // Intrinsic call f(...) or a (scripted) reference.
    auto ref = parse_ref();
    if (!ref) return nullptr;
    if (ref->rank() == 0 && accept(EqnTokKind::LParen)) {
      std::vector<ExprPtr> args;
      if (!at(EqnTokKind::RParen)) {
        do {
          ExprPtr arg = parse_arith();
          if (!arg) return nullptr;
          args.push_back(std::move(arg));
        } while (accept(EqnTokKind::Comma));
      }
      if (!expect(EqnTokKind::RParen, "after the call arguments"))
        return nullptr;
      return std::make_unique<CallExpr>(ref->name, std::move(args), ref->loc);
    }
    if (ref->rank() == 0)
      return std::make_unique<NameExpr>(ref->name, ref->loc);
    std::vector<ExprPtr> subs;
    for (auto& s : ref->supers) subs.push_back(std::move(s));
    for (auto& s : ref->subs) subs.push_back(std::move(s));
    return std::make_unique<IndexExpr>(
        std::make_unique<NameExpr>(ref->name, ref->loc), std::move(subs),
        ref->loc);
  }
  diags_.error(peek().loc, "expected an expression, found " +
                               std::string(eqn_tok_name(peek().kind)));
  return nullptr;
}

}  // namespace ps::eqn
