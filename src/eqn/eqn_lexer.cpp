#include "eqn/eqn_lexer.hpp"

#include <cctype>
#include <map>

namespace ps::eqn {

namespace {

const std::map<std::string_view, EqnTokKind> kKeywords = {
    {"module", EqnTokKind::KwModule},   {"param", EqnTokKind::KwParam},
    {"result", EqnTokKind::KwResult},   {"for", EqnTokKind::KwFor},
    {"in", EqnTokKind::KwIn},           {"if", EqnTokKind::KwIf},
    {"otherwise", EqnTokKind::KwOtherwise},
    {"int", EqnTokKind::KwInt},         {"real", EqnTokKind::KwReal},
    {"and", EqnTokKind::KwAnd},         {"or", EqnTokKind::KwOr},
    {"not", EqnTokKind::KwNot},         {"div", EqnTokKind::KwDiv},
    {"mod", EqnTokKind::KwMod},
};

}  // namespace

std::string_view eqn_tok_name(EqnTokKind kind) {
  switch (kind) {
    case EqnTokKind::EndOfFile: return "end of file";
    case EqnTokKind::Identifier: return "identifier";
    case EqnTokKind::IntLit: return "integer literal";
    case EqnTokKind::RealLit: return "real literal";
    case EqnTokKind::Command: return "TeX command";
    case EqnTokKind::KwModule: return "'module'";
    case EqnTokKind::KwParam: return "'param'";
    case EqnTokKind::KwResult: return "'result'";
    case EqnTokKind::KwFor: return "'for'";
    case EqnTokKind::KwIn: return "'in'";
    case EqnTokKind::KwIf: return "'if'";
    case EqnTokKind::KwOtherwise: return "'otherwise'";
    case EqnTokKind::KwInt: return "'int'";
    case EqnTokKind::KwReal: return "'real'";
    case EqnTokKind::KwAnd: return "'and'";
    case EqnTokKind::KwOr: return "'or'";
    case EqnTokKind::KwNot: return "'not'";
    case EqnTokKind::KwDiv: return "'div'";
    case EqnTokKind::KwMod: return "'mod'";
    case EqnTokKind::Caret: return "'^'";
    case EqnTokKind::Underscore: return "'_'";
    case EqnTokKind::LBrace: return "'{'";
    case EqnTokKind::RBrace: return "'}'";
    case EqnTokKind::LParen: return "'('";
    case EqnTokKind::RParen: return "')'";
    case EqnTokKind::LBracket: return "'['";
    case EqnTokKind::RBracket: return "']'";
    case EqnTokKind::Comma: return "','";
    case EqnTokKind::Colon: return "':'";
    case EqnTokKind::Semicolon: return "';'";
    case EqnTokKind::Equal: return "'='";
    case EqnTokKind::Plus: return "'+'";
    case EqnTokKind::Minus: return "'-'";
    case EqnTokKind::Star: return "'*'";
    case EqnTokKind::Slash: return "'/'";
    case EqnTokKind::Less: return "'<'";
    case EqnTokKind::LessEq: return "'<='";
    case EqnTokKind::Greater: return "'>'";
    case EqnTokKind::GreaterEq: return "'>='";
    case EqnTokKind::NotEq: return "'<>'";
    case EqnTokKind::DotDot: return "'..'";
  }
  return "?";
}

EqnLexer::EqnLexer(std::string_view source, DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

char EqnLexer::peek(size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char EqnLexer::advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

SourceLoc EqnLexer::here() const {
  return SourceLoc{line_, column_, static_cast<uint32_t>(pos_)};
}

void EqnLexer::skip_trivia() {
  while (!at_end()) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '%') {  // TeX comment to end of line
      while (!at_end() && peek() != '\n') advance();
    } else {
      break;
    }
  }
}

EqnToken EqnLexer::lex_number(SourceLoc start) {
  std::string text;
  while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
  // '..' must not be swallowed as a decimal point.
  if (peek() == '.' && peek(1) != '.' &&
      std::isdigit(static_cast<unsigned char>(peek(1)))) {
    text += advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    EqnToken tok{EqnTokKind::RealLit, text, 0, std::stod(text), start};
    return tok;
  }
  EqnToken tok{EqnTokKind::IntLit, text, std::stoll(text), 0, start};
  return tok;
}

EqnToken EqnLexer::lex_identifier(SourceLoc start) {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '\'')
    text += advance();
  auto kw = kKeywords.find(text);
  if (kw != kKeywords.end()) return EqnToken{kw->second, text, 0, 0, start};
  return EqnToken{EqnTokKind::Identifier, text, 0, 0, start};
}

EqnToken EqnLexer::lex_command(SourceLoc start) {
  advance();  // backslash
  std::string text;
  while (std::isalpha(static_cast<unsigned char>(peek()))) text += advance();
  if (text.empty())
    diags_.error(start, "empty TeX command");
  return EqnToken{EqnTokKind::Command, text, 0, 0, start};
}

EqnToken EqnLexer::next() {
  skip_trivia();
  SourceLoc start = here();
  if (at_end()) return EqnToken{EqnTokKind::EndOfFile, "", 0, 0, start};

  char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(start);
  if (std::isalpha(static_cast<unsigned char>(c))) return lex_identifier(start);
  if (c == '\\') return lex_command(start);

  advance();
  auto tok = [&](EqnTokKind kind) {
    return EqnToken{kind, std::string(1, c), 0, 0, start};
  };
  switch (c) {
    case '^': return tok(EqnTokKind::Caret);
    case '_': return tok(EqnTokKind::Underscore);
    case '{': return tok(EqnTokKind::LBrace);
    case '}': return tok(EqnTokKind::RBrace);
    case '(': return tok(EqnTokKind::LParen);
    case ')': return tok(EqnTokKind::RParen);
    case '[': return tok(EqnTokKind::LBracket);
    case ']': return tok(EqnTokKind::RBracket);
    case ',': return tok(EqnTokKind::Comma);
    case ':': return tok(EqnTokKind::Colon);
    case ';': return tok(EqnTokKind::Semicolon);
    case '=': return tok(EqnTokKind::Equal);
    case '+': return tok(EqnTokKind::Plus);
    case '-': return tok(EqnTokKind::Minus);
    case '*': return tok(EqnTokKind::Star);
    case '/': return tok(EqnTokKind::Slash);
    case '<':
      if (peek() == '=') {
        advance();
        return EqnToken{EqnTokKind::LessEq, "<=", 0, 0, start};
      }
      if (peek() == '>') {
        advance();
        return EqnToken{EqnTokKind::NotEq, "<>", 0, 0, start};
      }
      return tok(EqnTokKind::Less);
    case '>':
      if (peek() == '=') {
        advance();
        return EqnToken{EqnTokKind::GreaterEq, ">=", 0, 0, start};
      }
      return tok(EqnTokKind::Greater);
    case '.':
      if (peek() == '.') {
        advance();
        return EqnToken{EqnTokKind::DotDot, "..", 0, 0, start};
      }
      diags_.error(start, "stray '.'");
      return next();
    default:
      diags_.error(start, std::string("unexpected character '") + c + "'");
      return next();
  }
}

std::vector<EqnToken> EqnLexer::lex_all() {
  std::vector<EqnToken> out;
  while (true) {
    out.push_back(next());
    if (out.back().kind == EqnTokKind::EndOfFile) return out;
  }
}

}  // namespace ps::eqn
