#pragma once

#include <optional>
#include <string_view>

#include "eqn/eqn_ast.hpp"
#include "frontend/ast.hpp"
#include "support/diagnostics.hpp"

namespace ps::eqn {

/// Translate a parsed equation module into a PS module AST (the paper's
/// "ultimate goal" front end). The key moves, straight from section 2:
///
///  * superscripts and subscripts are not differentiated -- both become
///    PS subscripts, superscripts first (A^{k}_{i,j} -> A[k, i, j]);
///  * every index binding (`k in 2..maxK`) becomes a named subrange
///    type, so bindings double as the loop domains of the scheduler;
///  * clauses with the same left-hand-side shape merge into one PS
///    equation whose right-hand side chains the guards into an
///    if/then/else (the guarded clauses in order, the 'otherwise'
///    clause last);
///  * clauses with distinct shapes (e.g. the fixed superscript in
///    A^{1}_{i,j} = InitialA_{i,j}) stay separate equations, exactly
///    like `A[1] = InitialA` in the paper's Figure 1;
///  * each equation array that is not a parameter becomes a local
///    variable whose dimension ranges are the union of the binding
///    ranges and any literal fixed subscripts (the k dimension of A is
///    1..maxK although the recurrence binds k in 2..maxK);
///  * `result newA = A^{maxK}` declares the output array over the
///    remaining dimensions and emits the copy equation
///    `newA[i, j] = A[maxK, i, j]`.
///
/// Returns nullopt with diagnostics for inconsistent input (clashing
/// binding ranges, missing 'otherwise', rank mismatches...).
[[nodiscard]] std::optional<ModuleAst> translate_equations(
    const EqnModule& module, DiagnosticEngine& diags);

/// Convenience wrapper: parse EQN text and translate it. The returned
/// module pretty-prints to PS source via to_source() and feeds straight
/// into ps::Compiler::analyze / ps::Sema.
[[nodiscard]] std::optional<ModuleAst> equations_to_ps(
    std::string_view eqn_source, DiagnosticEngine& diags);

}  // namespace ps::eqn
