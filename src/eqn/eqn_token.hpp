#pragma once

#include <string_view>

#include "support/token_base.hpp"

namespace ps::eqn {

/// Tokens of the equation language EQN -- the TeX-flavoured surface
/// syntax for numerical equations the paper names as its "ultimate
/// goal" front end ("a translator of equations in the form of (1),
/// perhaps as TeX or Postscript files, to modules in this language").
enum class EqnTokKind {
  EndOfFile,
  Identifier,   // A, InitialA, maxK
  IntLit,       // 4
  RealLit,      // 0.25
  Command,      // \frac, \cdot, \lor ... (text() is without the backslash)

  // Keywords.
  KwModule,
  KwParam,
  KwResult,
  KwFor,
  KwIn,
  KwIf,
  KwOtherwise,
  KwInt,
  KwReal,
  KwAnd,
  KwOr,
  KwNot,
  KwDiv,
  KwMod,

  // Punctuation and operators.
  Caret,      // ^
  Underscore, // _
  LBrace,     // {
  RBrace,     // }
  LParen,     // (
  RParen,     // )
  LBracket,   // [
  RBracket,   // ]
  Comma,      // ,
  Colon,      // :
  Semicolon,  // ;
  Equal,      // =
  Plus,
  Minus,
  Star,
  Slash,
  Less,
  LessEq,     // <=
  Greater,
  GreaterEq,  // >=
  NotEq,      // <>
  DotDot,     // ..
};

using EqnToken = BasicToken<EqnTokKind>;

[[nodiscard]] std::string_view eqn_tok_name(EqnTokKind kind);

}  // namespace ps::eqn
