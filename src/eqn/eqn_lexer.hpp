#pragma once

#include <string_view>
#include <vector>

#include "eqn/eqn_token.hpp"
#include "support/diagnostics.hpp"

namespace ps::eqn {

/// Hand-written lexer for the EQN equation language.
///
/// Comments run from `%` to end of line (TeX style). TeX commands are
/// lexed as Command tokens with the backslash stripped (`\frac` ->
/// "frac"); the parser maps relational and logical commands (`\le`,
/// `\lor`, `\cdot`, ...) onto the plain operators, so both notations
/// may be mixed freely.
class EqnLexer {
 public:
  EqnLexer(std::string_view source, DiagnosticEngine& diags);

  /// Lex the next token; returns EndOfFile forever once exhausted.
  EqnToken next();

  /// Lex the entire buffer (convenience for the tests).
  std::vector<EqnToken> lex_all();

 private:
  [[nodiscard]] char peek(size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] SourceLoc here() const;
  void skip_trivia();

  EqnToken lex_number(SourceLoc start);
  EqnToken lex_identifier(SourceLoc start);
  EqnToken lex_command(SourceLoc start);

  std::string_view source_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace ps::eqn
