#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace ps::eqn {

/// A superscripted/subscripted reference `A^{k-1}_{i,j-1}` in the
/// equation language. Following the paper's section 2 convention,
/// superscripts (iteration numbers) and subscripts (array elements)
/// are not differentiated downstream: translation concatenates them,
/// superscripts first, into one PS subscript list `A[k-1, i, j-1]`.
struct EqnRef {
  std::string name;
  std::vector<ExprPtr> supers;
  std::vector<ExprPtr> subs;
  SourceLoc loc;

  [[nodiscard]] size_t rank() const { return supers.size() + subs.size(); }
};

/// `k in 2..maxK` -- one index binding of a clause's `for` domain.
struct EqnBinding {
  std::string var;
  ExprPtr lo;
  ExprPtr hi;
  SourceLoc loc;
};

/// One equation clause:
///   A^{k}_{i,j} = rhs  [if guard | otherwise]  [for bindings];
/// Clauses whose left-hand sides share the same shape are merged by the
/// translator into a single PS equation with an if/else chain.
struct EqnClause {
  EqnRef lhs;
  ExprPtr rhs;
  ExprPtr guard;          // null unless `if`
  bool otherwise = false; // `otherwise` marker
  std::vector<EqnBinding> bindings;
  SourceLoc loc;
};

/// `param InitialA : real[0..M+1, 0..M+1];`
struct EqnParam {
  std::string name;
  bool is_int = false;  // scalar int vs real
  /// Array dimensions (empty = scalar): lo/hi bound expressions.
  std::vector<std::pair<ExprPtr, ExprPtr>> dims;
  SourceLoc loc;
};

/// `result newA = A^{maxK};` -- the module result is a (possibly
/// partially applied) slice of an equation array.
struct EqnResult {
  std::string name;
  EqnRef ref;
  SourceLoc loc;
};

/// A parsed equation file: one module worth of parameters, results and
/// clauses.
struct EqnModule {
  std::string name;
  std::vector<EqnParam> params;
  std::vector<EqnResult> results;
  std::vector<EqnClause> clauses;
  SourceLoc loc;
};

}  // namespace ps::eqn
