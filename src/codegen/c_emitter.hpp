#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/flowchart.hpp"
#include "core/scheduler.hpp"
#include "graph/depgraph.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

struct CodegenOptions {
  /// Emit `#pragma omp parallel for` above DOALL loops (every loop is
  /// also annotated with a `/* DO */` / `/* DOALL */` comment, matching
  /// the paper's "each loop is annotated to indicate whether it is an
  /// iterative or concurrent for").
  bool emit_openmp = true;
  /// Allocate windowed storage for local dimensions the sound
  /// virtual-dimension analysis marked virtual, indexing them modulo the
  /// window (section 3.4's memory reuse).
  bool use_virtual_windows = true;
  const std::map<std::string, std::vector<VirtualDim>>* virtual_dims = nullptr;
  /// C function name; defaults to the sanitised module name.
  std::string function_name;
  /// Exact non-rectangular loop bounds (Lamport [10]) for the hyperplane-
  /// transformed iteration space: loops whose variable has a level here
  /// are emitted with max-of-ceil-div lower and min-of-floor-div upper
  /// bounds over the enclosing indices, replacing the rectangular
  /// bounding-box subrange (and its in-body guard work). Must outlive
  /// the emit_c call.
  const LoopNestBounds* exact_bounds = nullptr;
};

/// Generate a self-contained C translation unit for a scheduled module:
/// one function taking the input arrays/scalars and output arrays
/// (row-major, caller-allocated), with locals malloc'd inside. This is
/// the code-generator phase of the paper's compiler ("generates
/// declarations and functions in the C language").
[[nodiscard]] std::string emit_c(const CheckedModule& module,
                                 const DepGraph& graph,
                                 const Flowchart& flowchart,
                                 const CodegenOptions& options = {});

/// Map a PS identifier to a valid C identifier (primes become "_p").
[[nodiscard]] std::string c_identifier(const std::string& name);

}  // namespace ps
