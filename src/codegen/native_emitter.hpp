#pragma once

#include <string>
#include <vector>

#include "core/flowchart.hpp"
#include "frontend/sema.hpp"
#include "runtime/bytecode.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

/// The generated C of one module's native-tier kernels: a translation
/// unit with one point kernel per equation plus (when an exact nest is
/// supplied) one stripe kernel scanning a contiguous point range of a
/// hyperplane. Compiled to a shared object and driven through function
/// pointers by the NativeEngine (runtime/native_engine.hpp).
///
/// ABI (C99, LP64 -- `long` is int64_t on every platform the tier
/// supports; the engine refuses to load elsewhere):
///
///   typedef struct {
///     double* data;        // NdArray::raw()
///     const long* lo;      // per-dim lower bounds
///     const long* win;     // per-dim physical window
///     const long* stride;  // per-dim row-major stride
///   } psc_arr;
///
///   // One equation instance; iv holds the loop-variable values in
///   // CheckedEquation::loop_dims order.
///   void psc_eq_<id>(psc_arr* a, const long* ints, const double* reals,
///                    const long* iv);
///
///   // Recurrence points [begin, end) of hyperplane t, in the exact
///   // nest's lexicographic point order (the order NestCursor scans).
///   // Returns the number of points executed.
///   long psc_stripe(psc_arr* a, const long* ints, const double* reals,
///                   const long* P, long t, long begin, long end);
///
///   // Whole-module kernel (emit_native_module): one call executes the
///   // flowchart in the Interpreter's order -- every loop sequential,
///   // every equation inline. ints/reals are mutable because scalar-
///   // target equations write both interpretations mid-run, exactly
///   // like EvalCore::set_scalar.
///   void psc_module(psc_arr* a, long* ints, double* reals, const long* P);
///
///   // Parallel whole-module form (emitted when the flowchart has at
///   // least one DOALL loop whose body only stores to arrays/records).
///   // psc_module_par walks the flowchart exactly like psc_module, but
///   // at each outermost such DOALL (site k) it calls the host's hook
///   // with the enclosing DO-loop index values (`outer`, loop-stack
///   // order) and the loop's trip count instead of running the loop.
///   // The host then invokes psc_module_site once per worker: each
///   // call rebinds the outer indices, recomputes the loop bounds and
///   // runs the contiguous slice [lo + worker*n/nworkers,
///   // lo + (worker+1)*n/nworkers) of the site's iterations (inner
///   // loops sequential). The hook must not return before every worker
///   // call completes -- the barrier that keeps flowchart order.
///   typedef void (*psc_par_hook)(void* hook_ctx, long site,
///                                const long* outer, long count);
///   void psc_module_par(psc_arr* a, long* ints, double* reals,
///                       const long* P, psc_par_hook hook, void* hook_ctx);
///   void psc_module_site(psc_arr* a, long* ints, double* reals,
///                        const long* P, long site, const long* outer,
///                        long worker, long nworkers);
///
/// `a` is indexed by BcLayout array slot, `ints`/`reals` by scalar slot
/// (both interpretations of every bound scalar, exactly like
/// EvalCore::set_scalar), and `P` by NativeKernel::param_names order --
/// the symbolic parameters the stripe's Fourier-Motzkin bounds mention.
///
/// Semantics mirror the bytecode VM instruction by instruction
/// (wrapping integer arithmetic, bc_double_to_int64 saturation, the
/// VM's min/max operand order), so a kernel result is bit-identical to
/// the bytecode engine's -- the cross-engine differential tests hold
/// the native tier to the same last-ulp contract as the other two.
struct NativeKernel {
  std::string c_source;
  /// Symbolic parameters of the stripe bounds, in P[] binding order.
  std::vector<std::string> param_names;
  /// Equation ids with a point kernel (every equation of the module;
  /// empty for whole-module kernels).
  std::vector<size_t> equations;
  bool has_stripe = false;
  bool has_module = false;
  /// psc_module_par + psc_module_site were emitted (whole-module
  /// kernels with at least one parallelisable DOALL site).
  bool has_module_par = false;

  [[nodiscard]] static std::string equation_symbol(size_t id) {
    return "psc_eq_" + std::to_string(id);
  }
  [[nodiscard]] static const char* stripe_symbol() { return "psc_stripe"; }
  [[nodiscard]] static const char* module_symbol() { return "psc_module"; }
  [[nodiscard]] static const char* module_par_symbol() {
    return "psc_module_par";
  }
  [[nodiscard]] static const char* module_site_symbol() {
    return "psc_module_site";
  }
};

/// Emission knobs shared by both entry points.
struct NativeEmitOptions {
  /// When non-empty, innermost loops whose bodies are pure equation
  /// stores get `#pragma <simd_pragma>` (e.g. "omp simd"). The caller
  /// must have probed that the compile flags honour it
  /// (native_engine_simd_enabled) -- an unhonoured pragma is ignored
  /// noise, an honoured one vectorises independent iterations without
  /// reassociation, so results stay bit-identical either way.
  std::string simd_pragma;
};

/// Emit the native kernels of `module` against the dense slot `layout`
/// (BcLayout::for_module). `nest` (optional) adds the stripe kernel for
/// the recurrence equation `recurrence`; `windowed_array` names the one
/// array whose first dimension may be physically windowed (the
/// transformed A' -- its dim-0 addressing gets the wrap modulo, every
/// other dimension of every array is allocated at full extent by the
/// WavefrontRunner). Throws std::runtime_error for modules outside the
/// emitter's fragment (whole-record values outside a field projection,
/// unbounded nest levels); the caller treats that as a fallback to the
/// bytecode tier.
[[nodiscard]] NativeKernel emit_native_kernel(
    const CheckedModule& module, const BcLayout& layout,
    const LoopNestBounds* nest, size_t recurrence,
    const std::string& windowed_array, const NativeEmitOptions& options = {});

/// Emit the whole-module kernel for an interpreted (flowchart-ordered)
/// run: `psc_module` walks `flowchart` exactly like the Interpreter --
/// loops in order (DOALL included, sequentially; results are identical
/// because DOALL instances are independent), equations inline. Loop
/// bounds come from `exact_bounds` where the level's variable has an
/// entry (outer indices and P[] parameters), else from the rectangular
/// subrange, whose names resolve through P[] only -- mirroring the
/// Interpreter's eval_const_int over the parameter environment. Every
/// array is addressed at full extent (no windowing); callers using
/// virtual windows must not take this path. Throws like
/// emit_native_kernel for modules outside the fragment.
[[nodiscard]] NativeKernel emit_native_module(
    const CheckedModule& module, const BcLayout& layout, const DepGraph& graph,
    const Flowchart& flowchart, const LoopNestBounds* exact_bounds,
    const NativeEmitOptions& options = {});

}  // namespace ps
